package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// stubReplica is a scriptable fake tasted replica.
type stubReplica struct {
	name string
	srv  *httptest.Server

	mu        sync.Mutex
	bodies    [][]byte // raw /v1/detect bodies received
	detects   int
	respond   func(w http.ResponseWriter, body []byte)
	statsOK   bool
	metrics   string
	blockOn   chan struct{} // when non-nil, /v1/detect blocks until closed
	blockedAt atomic.Int64
}

func newStubReplica(name string) *stubReplica {
	s := &stubReplica{name: name, statsOK: true}
	s.respond = func(w http.ResponseWriter, body []byte) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"database":"x","tables":[],"served_by":%q,"degraded":false}`, name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		s.detects++
		s.bodies = append(s.bodies, body)
		block := s.blockOn
		respond := s.respond
		s.mu.Unlock()
		if block != nil {
			s.blockedAt.Add(1)
			<-block
		}
		respond(w, body)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ok := s.statsOK
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unhealthy", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	})
	mux.HandleFunc("/v1/types", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"types":["city","country"],"from":%q}`, name)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		m := s.metrics
		s.mu.Unlock()
		fmt.Fprint(w, m)
	})
	s.srv = httptest.NewServer(mux)
	return s
}

func (s *stubReplica) setStatsOK(ok bool) {
	s.mu.Lock()
	s.statsOK = ok
	s.mu.Unlock()
}

func (s *stubReplica) detectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detects
}

// fastCfg keeps retries and probing snappy and deterministic for tests:
// background probing off (tests drive ProbeOnce), 1 retry, 1 ms backoff.
func fastCfg() Config {
	return Config{
		Retry: retry.Policy{MaxRetries: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Pool: PoolConfig{
			ProbeInterval: -1, // disabled
			ProbeTimeout:  time.Second,
			EjectAfter:    2,
			ReadmitAfter:  2,
		},
	}
}

func startCoordinator(t *testing.T, cfg Config, stubs ...*stubReplica) (*Coordinator, *httptest.Server) {
	t.Helper()
	replicas := make(map[string]string, len(stubs))
	for _, s := range stubs {
		replicas[s.name] = s.srv.URL
	}
	c := NewCoordinator(replicas, cfg)
	c.Start()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	return c, srv
}

func postDetect(t *testing.T, baseURL, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/detect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return resp
}

func fetchStats(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return out
}

// keyOwnedBy finds a database name whose route key the ring assigns to the
// wanted replica — so tests can steer requests at a specific owner.
func keyOwnedBy(r *Ring, want string) string {
	for i := 0; i < 10000; i++ {
		db := fmt.Sprintf("db%04d", i)
		if r.Owner(db) == want {
			return db
		}
	}
	panic("no key found for " + want)
}

// TestCoordinatorRoutesToOwner: the replica named in X-Taste-Replica is the
// ring owner of the request's route key, and the proxied body reaches the
// replica byte-identical.
func TestCoordinatorRoutesToOwner(t *testing.T) {
	a, b := newStubReplica("a"), newStubReplica("b")
	defer a.srv.Close()
	defer b.srv.Close()
	c, srv := startCoordinator(t, fastCfg(), a, b)

	for _, want := range []string{"a", "b"} {
		db := keyOwnedBy(c.Ring(), want)
		body := fmt.Sprintf(`{"database":%q,"pipelined":true,"deadline_ms":250}`, db)
		resp := postDetect(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get(ReplicaHeader); got != want {
			t.Fatalf("routed to %q, ring owner is %q", got, want)
		}
	}
	a.mu.Lock()
	gotBody := string(a.bodies[0])
	a.mu.Unlock()
	wantBody := fmt.Sprintf(`{"database":%q,"pipelined":true,"deadline_ms":250}`, keyOwnedBy(c.Ring(), "a"))
	if gotBody != wantBody {
		t.Fatalf("body not passed through verbatim:\n got %s\nwant %s", gotBody, wantBody)
	}
	st := fetchStats(t, srv.URL)
	if st.Routing.Routed != 2 || st.Routing.Failovers != 0 {
		t.Fatalf("stats: %+v", st.Routing)
	}
}

// TestCoordinatorSingleTableSpreads: single-table requests for one tenant
// hash at database/table granularity, so a multi-table tenant's traffic
// lands on more than one replica.
func TestCoordinatorSingleTableSpreads(t *testing.T) {
	a, b, c3 := newStubReplica("a"), newStubReplica("b"), newStubReplica("c")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c3.srv.Close()
	_, srv := startCoordinator(t, fastCfg(), a, b, c3)

	hit := make(map[string]bool)
	for i := 0; i < 24; i++ {
		body := fmt.Sprintf(`{"database":"bigtenant","tables":["t%02d"]}`, i)
		resp := postDetect(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		hit[resp.Header.Get(ReplicaHeader)] = true
	}
	if len(hit) < 2 {
		t.Fatalf("24 single-table keys all landed on one replica: %v", hit)
	}
}

// TestCoordinatorFailoverMidBurst: the owner dies mid-burst; subsequent
// requests retry, fail over to the next chain node, and keep succeeding.
// The stats ledger accounts the retries and failovers, and hysteresis
// ejects the dead replica.
func TestCoordinatorFailoverMidBurst(t *testing.T) {
	a, b := newStubReplica("a"), newStubReplica("b")
	defer b.srv.Close()
	c, srv := startCoordinator(t, fastCfg(), a, b)

	db := keyOwnedBy(c.Ring(), "a")
	body := fmt.Sprintf(`{"database":%q}`, db)
	for i := 0; i < 3; i++ {
		resp := postDetect(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get(ReplicaHeader); got != "a" {
			t.Fatalf("pre-kill request %d served by %q", i, got)
		}
	}

	a.srv.Close() // kill the owner mid-burst

	for i := 0; i < 4; i++ {
		resp := postDetect(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(ReplicaHeader); got != "b" {
			t.Fatalf("post-kill request %d served by %q, want failover to b", i, got)
		}
	}

	st := fetchStats(t, srv.URL)
	if st.Routing.Routed != 7 {
		t.Fatalf("routed = %d, want 7", st.Routing.Routed)
	}
	if st.Routing.Failovers == 0 {
		t.Fatalf("no failovers accounted: %+v", st.Routing)
	}
	if st.Routing.Retries == 0 {
		t.Fatalf("no retries accounted: %+v", st.Routing)
	}
	// EjectAfter=2 and each failed routing attempt reports a failure: after
	// ≥2 post-kill requests "a" must be ejected…
	if c.Pool().IsHealthy("a") {
		t.Fatalf("dead replica still marked healthy after %d failures", st.Routing.Failovers)
	}
	// …and later requests skip it without burning retries (chain starts at
	// the healthy fallback immediately).
	pre := fetchStats(t, srv.URL).Routing.Retries
	resp := postDetect(t, srv.URL, body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := fetchStats(t, srv.URL).Routing.Retries; got != pre {
		t.Fatalf("ejected replica still being retried (%d→%d)", pre, got)
	}
}

// TestCoordinatorAllDown503: with every replica unreachable the coordinator
// answers 503 with a machine-readable reason, not a hang or a 500.
func TestCoordinatorAllDown503(t *testing.T) {
	a, b := newStubReplica("a"), newStubReplica("b")
	_, srv := startCoordinator(t, fastCfg(), a, b)
	a.srv.Close()
	b.srv.Close()

	resp := postDetect(t, srv.URL, `{"database":"any"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var out struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
		Key    string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode 503 body: %v", err)
	}
	if out.Error != "fleet unavailable" || out.Reason == "" || out.Key != "any" {
		t.Fatalf("503 body: %+v", out)
	}
	st := fetchStats(t, srv.URL)
	if st.Routing.Unavailable != 1 {
		t.Fatalf("unavailable = %d, want 1", st.Routing.Unavailable)
	}
}

// TestCoordinatorQueueOverflow429: MaxInFlight=1, QueueDepth=1 — the third
// concurrent request must shed with 429 + Retry-After while the first still
// occupies the slot.
func TestCoordinatorQueueOverflow429(t *testing.T) {
	a := newStubReplica("a")
	defer a.srv.Close()
	release := make(chan struct{})
	a.mu.Lock()
	a.blockOn = release
	a.mu.Unlock()

	cfg := fastCfg()
	cfg.MaxInFlight = 1
	cfg.QueueDepth = 1
	cfg.QueueWait = 2 * time.Second
	_, srv := startCoordinator(t, cfg, a)

	// First request takes the in-flight slot and blocks inside the stub.
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/detect", "application/json", strings.NewReader(`{"database":"d"}`))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitUntil(t, time.Second, func() bool { return a.blockedAt.Load() == 1 })

	// Second request fills the queue (it will eventually succeed).
	second := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/detect", "application/json", strings.NewReader(`{"database":"d"}`))
		if err != nil {
			second <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		second <- resp.StatusCode
	}()
	waitUntil(t, time.Second, func() bool {
		st := fetchStats(t, srv.URL)
		return st.Routing.Routed >= 0 && queueWaiters(srv.URL) >= 0 // stats reachable
	})
	// Give the second request time to enter the wait queue: poll the shed
	// behaviour directly — the third request must be rejected immediately.
	var shedStatus int
	waitUntil(t, 2*time.Second, func() bool {
		resp := postDetect(t, srv.URL, `{"database":"d"}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		shedStatus = resp.StatusCode
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
			return true
		}
		return false
	})
	if shedStatus != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", shedStatus)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first request status = %d", got)
	}
	if got := <-second; got != http.StatusOK {
		t.Fatalf("queued request status = %d", got)
	}
	st := fetchStats(t, srv.URL)
	if st.Routing.Shed == 0 {
		t.Fatalf("shed not accounted: %+v", st.Routing)
	}
	if st.Routing.Routed != 2 {
		t.Fatalf("routed = %d, want 2", st.Routing.Routed)
	}
}

// queueWaiters is a stats-poll helper placeholder (the ledger does not
// expose waiters; reachability is what the overflow test needs).
func queueWaiters(string) int { return 0 }

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}

// TestPoolHysteresis: EjectAfter consecutive probe failures eject; a single
// success resets the streak; ReadmitAfter consecutive good probes readmit.
func TestPoolHysteresis(t *testing.T) {
	a := newStubReplica("a")
	defer a.srv.Close()
	cfg := PoolConfig{ProbeInterval: -1, ProbeTimeout: time.Second, EjectAfter: 3, ReadmitAfter: 2}
	p := NewPool(map[string]string{"a": a.srv.URL}, cfg)

	var transitions []bool
	var tmu sync.Mutex
	p.SetTransitionHook(func(_ string, healthy bool) {
		tmu.Lock()
		transitions = append(transitions, healthy)
		tmu.Unlock()
	})

	ctx := t.Context()
	// 2 failures + success: streak resets, still healthy.
	a.setStatsOK(false)
	p.ProbeOnce(ctx)
	p.ProbeOnce(ctx)
	a.setStatsOK(true)
	p.ProbeOnce(ctx)
	if !p.IsHealthy("a") {
		t.Fatal("ejected before EjectAfter consecutive failures")
	}
	// 3 consecutive failures: ejected.
	a.setStatsOK(false)
	for i := 0; i < 3; i++ {
		p.ProbeOnce(ctx)
	}
	if p.IsHealthy("a") {
		t.Fatal("not ejected after EjectAfter consecutive failures")
	}
	// 1 good probe is not enough to readmit…
	a.setStatsOK(true)
	p.ProbeOnce(ctx)
	if p.IsHealthy("a") {
		t.Fatal("readmitted after a single good probe")
	}
	// …2 consecutive are.
	p.ProbeOnce(ctx)
	if !p.IsHealthy("a") {
		t.Fatal("not readmitted after ReadmitAfter good probes")
	}
	tmu.Lock()
	defer tmu.Unlock()
	if len(transitions) != 2 || transitions[0] != false || transitions[1] != true {
		t.Fatalf("transitions = %v, want [false true]", transitions)
	}
	snap := p.Snapshot()
	if snap[0].Ejections != 1 || snap[0].Probes != 8 || snap[0].ProbeFailures != 5 {
		t.Fatalf("snapshot: %+v", snap[0])
	}
}

// TestCoordinatorMetricsAggregation: /metrics sums replica series by
// identity and appends the coordinator's own taste_fleet_* series; the
// whole exposition stays well-formed.
func TestCoordinatorMetricsAggregation(t *testing.T) {
	a, b := newStubReplica("a"), newStubReplica("b")
	defer a.srv.Close()
	defer b.srv.Close()
	a.mu.Lock()
	a.metrics = "# TYPE taste_detect_requests_total counter\ntaste_detect_requests_total{outcome=\"ok\"} 3\n"
	a.mu.Unlock()
	b.mu.Lock()
	b.metrics = "# TYPE taste_detect_requests_total counter\ntaste_detect_requests_total{outcome=\"ok\"} 4\n"
	b.mu.Unlock()
	_, srv := startCoordinator(t, fastCfg(), a, b)

	resp := postDetect(t, srv.URL, `{"database":"d"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	exposition := string(text)
	if !strings.Contains(exposition, `taste_detect_requests_total{outcome="ok"} 7`) {
		t.Fatalf("replica counters not summed:\n%s", exposition)
	}
	for _, want := range []string{
		`taste_fleet_requests_total{outcome="routed"} 1`,
		"taste_fleet_replicas_healthy 2",
		`taste_fleet_replica_requests_total`,
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("missing %q in:\n%s", want, exposition)
		}
	}
	if err := obs.CheckText(exposition); err != nil {
		t.Fatalf("aggregated exposition malformed: %v", err)
	}
}

// TestCoordinatorTypesPassthrough: /v1/types proxies a healthy replica's
// answer and survives the first replica being down.
func TestCoordinatorTypesPassthrough(t *testing.T) {
	a, b := newStubReplica("a"), newStubReplica("b")
	defer b.srv.Close()
	_, srv := startCoordinator(t, fastCfg(), a, b)
	a.srv.Close()

	resp, err := http.Get(srv.URL + "/v1/types")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"from":"b"`) {
		t.Fatalf("types not served by surviving replica: %s", body)
	}
}

// TestCoordinatorDegradedPassThrough: a 200-degraded replica answer passes
// through byte-identical — the coordinator must not re-interpret it.
func TestCoordinatorDegradedPassThrough(t *testing.T) {
	a := newStubReplica("a")
	defer a.srv.Close()
	const degraded = `{"database":"d","tables":[],"degraded":true,"degraded_columns":5}`
	a.mu.Lock()
	a.respond = func(w http.ResponseWriter, _ []byte) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, degraded)
	}
	a.mu.Unlock()
	_, srv := startCoordinator(t, fastCfg(), a)

	resp := postDetect(t, srv.URL, `{"database":"d"}`)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != degraded {
		t.Fatalf("degraded answer altered: %d %s", resp.StatusCode, body)
	}
}

// TestCoordinatorBadRequest: malformed JSON and oversized bodies are the
// coordinator's own 4xx, never proxied.
func TestCoordinatorBadRequest(t *testing.T) {
	a := newStubReplica("a")
	defer a.srv.Close()
	cfg := fastCfg()
	cfg.MaxBodyBytes = 64
	_, srv := startCoordinator(t, cfg, a)

	resp := postDetect(t, srv.URL, `{not json`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	big := fmt.Sprintf(`{"database":%q}`, strings.Repeat("x", 128))
	resp = postDetect(t, srv.URL, big)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if got := a.detectCount(); got != 0 {
		t.Fatalf("bad requests reached the replica %d times", got)
	}
}
