// Package metafeat defines the unified table view consumed by the detection
// models and extracts the non-textual metadata feature vector Mᶜₙ of §4.1
// (data type, statistics, histogram shape). It bridges the two data sources
// a detector sees: corpus tables during on-premise training and
// simdb metadata/scans during cloud prediction.
package metafeat

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/simdb"
)

// ColumnInfo is the unified per-column view.
type ColumnInfo struct {
	Name     string
	Comment  string
	DataType string
	// Stats holds ANALYZE-produced statistics; nil when histograms/stats
	// are unavailable (the default Taste variant).
	Stats *simdb.ColumnStats
	// Values holds column content when available: during training, or in
	// P2 after a scan. Nil in P1.
	Values []string
}

// TableInfo is the unified per-table view.
type TableInfo struct {
	Name     string
	Comment  string
	RowCount int
	Columns  []*ColumnInfo
}

// FromCorpusTable converts a generated table into the unified view,
// including content. When withStats is true the same statistics the
// database's ANALYZE TABLE would compute are attached (training mirrors the
// "Taste with histogram" deployment).
func FromCorpusTable(t *corpus.Table, withStats bool, buckets int) *TableInfo {
	ti := &TableInfo{Name: t.Name, Comment: t.Comment, RowCount: t.Rows()}
	for _, c := range t.Columns {
		ci := &ColumnInfo{Name: c.Name, Comment: c.Comment, DataType: c.SQLType, Values: c.Values}
		if withStats {
			ci.Stats = simdb.ComputeStats(c.Values, buckets)
		}
		ti.Columns = append(ti.Columns, ci)
	}
	return ti
}

// FromTableMeta converts database metadata into the unified view (no
// content). Stats ride along if the table was analyzed.
func FromTableMeta(tm *simdb.TableMeta) *TableInfo {
	ti := &TableInfo{Name: tm.Name, Comment: tm.Comment, RowCount: tm.RowCount}
	for i := range tm.Columns {
		cm := &tm.Columns[i]
		ti.Columns = append(ti.Columns, &ColumnInfo{
			Name:     cm.Name,
			Comment:  cm.Comment,
			DataType: cm.DataType,
			Stats:    cm.Stats,
		})
	}
	return ti
}

// Split partitions a table into chunks of at most l columns, implementing
// the column-splitting threshold of §6.1.2. Chunks share the table-level
// metadata. l ≤ 0 means no splitting.
func (t *TableInfo) Split(l int) []*TableInfo {
	if l <= 0 || len(t.Columns) <= l {
		return []*TableInfo{t}
	}
	var out []*TableInfo
	for start := 0; start < len(t.Columns); start += l {
		end := start + l
		if end > len(t.Columns) {
			end = len(t.Columns)
		}
		out = append(out, &TableInfo{
			Name:     t.Name,
			Comment:  t.Comment,
			RowCount: t.RowCount,
			Columns:  t.Columns[start:end],
		})
	}
	return out
}

// sqlTypes is the one-hot vocabulary for declared data types.
var sqlTypes = []string{"VARCHAR", "INT", "BIGINT", "DOUBLE", "DECIMAL", "DATE", "DATETIME", "TINYINT"}

// NonTextualDim is the width of the Mᶜₙ feature vector: the SQL-type
// one-hot block plus 14 statistics/histogram features.
const NonTextualDim = 8 + 14

// NonTextual extracts the Mᶜₙ feature vector for a column. includeStats
// gates the statistics/histogram block: the default Taste variant runs
// without it, "Taste with histogram" includes it (§6.2). Features are
// scaled to roughly unit range so they can be concatenated with latent
// representations without normalization layers.
func NonTextual(c *ColumnInfo, rowCount int, includeStats bool) []float64 {
	f := make([]float64, NonTextualDim)
	for i, t := range sqlTypes {
		if c.DataType == t {
			f[i] = 1
			break
		}
	}
	base := len(sqlTypes)
	f[base] = math.Log1p(float64(rowCount)) / 16
	if !includeStats || c.Stats == nil {
		return f
	}
	s := c.Stats
	f[base+1] = 1 // hasStats flag
	nonNull := s.RowCount - s.NullCount
	if s.RowCount > 0 {
		f[base+2] = float64(s.NullCount) / float64(s.RowCount)
	}
	if nonNull > 0 {
		f[base+3] = float64(s.NDV) / float64(nonNull)
	}
	f[base+4] = float64(s.MinLen) / 32
	f[base+5] = float64(s.MaxLen) / 32
	f[base+6] = s.AvgLen / 32
	f[base+7] = s.NumericRatio
	f[base+8] = signedLog(s.NumericMin)
	f[base+9] = signedLog(s.NumericMax)
	if h := s.Histogram; h != nil && len(h.Buckets) > 0 {
		switch h.Kind {
		case simdb.EqualHeight:
			f[base+10] = 1
		case simdb.EqualWidth:
			f[base+11] = 1
		}
		f[base+12] = float64(len(h.Buckets)) / 16
		// Bucket skew: max bucket count over mean bucket count, capped.
		maxCount, total := 0, 0
		for _, b := range h.Buckets {
			total += b.Count
			if b.Count > maxCount {
				maxCount = b.Count
			}
		}
		if total > 0 {
			skew := float64(maxCount) * float64(len(h.Buckets)) / float64(total)
			f[base+13] = math.Min(skew, 8) / 8
		}
	}
	return f
}

// signedLog compresses a value of arbitrary magnitude into [-1, 1].
func signedLog(v float64) float64 {
	s := math.Copysign(math.Log1p(math.Abs(v)), v) / 24
	return math.Max(-1, math.Min(1, s))
}
