package metafeat

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/simdb"
)

func sampleTable() *corpus.Table {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(5), 1)
	return ds.Test[0]
}

func TestFromCorpusTable(t *testing.T) {
	src := sampleTable()
	ti := FromCorpusTable(src, false, 0)
	if ti.Name != src.Name || ti.RowCount != src.Rows() || len(ti.Columns) != len(src.Columns) {
		t.Fatalf("conversion mismatch: %+v", ti)
	}
	for i, c := range ti.Columns {
		if c.Stats != nil {
			t.Fatal("stats must be nil when withStats=false")
		}
		if len(c.Values) != src.Rows() {
			t.Fatalf("column %d values missing", i)
		}
	}
	withStats := FromCorpusTable(src, true, 8)
	for _, c := range withStats.Columns {
		if c.Stats == nil {
			t.Fatal("stats missing when withStats=true")
		}
	}
}

func TestFromTableMetaMatchesCorpusView(t *testing.T) {
	src := sampleTable()
	s := simdb.NewServer(simdb.NoLatency)
	s.LoadTables("db", []*corpus.Table{src})
	conn, err := s.Connect(context.Background(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tm, err := conn.TableMetadata(context.Background(), src.Name)
	if err != nil {
		t.Fatal(err)
	}
	ti := FromTableMeta(tm)
	if ti.Name != src.Name || len(ti.Columns) != len(src.Columns) {
		t.Fatalf("mismatch: %+v", ti)
	}
	for i, c := range ti.Columns {
		if c.Values != nil {
			t.Fatal("metadata view must not carry content")
		}
		if c.Name != src.Columns[i].Name {
			t.Fatalf("column %d name mismatch", i)
		}
	}
}

func TestSplit(t *testing.T) {
	ti := &TableInfo{Name: "t"}
	for i := 0; i < 7; i++ {
		ti.Columns = append(ti.Columns, &ColumnInfo{Name: string(rune('a' + i))})
	}
	parts := ti.Split(3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if len(parts[0].Columns) != 3 || len(parts[2].Columns) != 1 {
		t.Fatalf("bad part sizes: %d/%d/%d", len(parts[0].Columns), len(parts[1].Columns), len(parts[2].Columns))
	}
	for _, p := range parts {
		if p.Name != "t" {
			t.Fatal("parts must share table-level metadata")
		}
	}
	if got := ti.Split(0); len(got) != 1 || got[0] != ti {
		t.Fatal("l<=0 must not split")
	}
	if got := ti.Split(100); len(got) != 1 {
		t.Fatal("l beyond width must not split")
	}
}

func TestNonTextualSQLTypeOneHot(t *testing.T) {
	c := &ColumnInfo{DataType: "INT"}
	f := NonTextual(c, 100, false)
	if len(f) != NonTextualDim {
		t.Fatalf("feature dim %d, want %d", len(f), NonTextualDim)
	}
	ones := 0
	for i := 0; i < 8; i++ {
		if f[i] == 1 {
			ones++
		}
	}
	if ones != 1 || f[1] != 1 {
		t.Fatalf("INT one-hot wrong: %v", f[:8])
	}
	// Unknown data type: all-zero one-hot block, no panic.
	g := NonTextual(&ColumnInfo{DataType: "GEOMETRY"}, 100, false)
	for i := 0; i < 8; i++ {
		if g[i] != 0 {
			t.Fatal("unknown data type must not set one-hot bits")
		}
	}
}

func TestNonTextualStatsGated(t *testing.T) {
	stats := simdb.ComputeStats([]string{"12", "34", "56", ""}, 4)
	c := &ColumnInfo{DataType: "VARCHAR", Stats: stats}
	withStats := NonTextual(c, 4, true)
	withoutStats := NonTextual(c, 4, false)
	if withStats[9] != 1 {
		t.Fatal("hasStats flag should be set")
	}
	if withoutStats[9] != 0 {
		t.Fatal("includeStats=false must zero the stats block")
	}
	diff := false
	for i := 10; i < NonTextualDim; i++ {
		if withoutStats[i] != 0 {
			t.Fatalf("stats feature %d leaked: %v", i, withoutStats[i])
		}
		if withStats[i] != 0 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("stats block should carry signal when enabled")
	}
}

func TestNonTextualBounded(t *testing.T) {
	// Extreme values must stay in a sane range for direct concatenation
	// with latent features.
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = "123456789012345678901234567890123456789012345"
	}
	stats := simdb.ComputeStats(vals, 8)
	f := NonTextual(&ColumnInfo{DataType: "BIGINT", Stats: stats}, 1000000000, true)
	for i, v := range f {
		if v < -2 || v > 2 {
			t.Fatalf("feature %d = %v out of range", i, v)
		}
	}
}

func TestNonTextualDistinguishesLengths(t *testing.T) {
	phone := simdb.ComputeStats([]string{"15551234567", "15559876543"}, 4)
	card := simdb.ComputeStats([]string{"4111222233334444", "4222333344445555"}, 4)
	fPhone := NonTextual(&ColumnInfo{DataType: "VARCHAR", Stats: phone}, 2, true)
	fCard := NonTextual(&ColumnInfo{DataType: "VARCHAR", Stats: card}, 2, true)
	if fPhone[14] == fCard[14] { // AvgLen feature
		t.Fatal("length features must separate phone numbers from card numbers")
	}
}

// Property: Split never loses or duplicates columns and preserves order.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(nRaw uint8, lRaw uint8) bool {
		n := int(nRaw%40) + 1
		l := int(lRaw % 25) // 0 = no split
		ti := &TableInfo{Name: "t"}
		for i := 0; i < n; i++ {
			ti.Columns = append(ti.Columns, &ColumnInfo{Name: fmt.Sprintf("c%d", i)})
		}
		parts := ti.Split(l)
		var names []string
		for _, p := range parts {
			if l > 0 && len(p.Columns) > l {
				return false
			}
			for _, c := range p.Columns {
				names = append(names, c.Name)
			}
		}
		if len(names) != n {
			return false
		}
		for i, name := range names {
			if name != fmt.Sprintf("c%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
