// The transport-agnostic detect core: request/response types plus the
// Detect method that executes one detection request end-to-end — deadline
// threading, execution-mode resolution, the degradation contract, outcome
// metrics. The HTTP handler in service.go and any other front end (the
// fleet harness drives it in-process; tests call it directly) share this
// one code path, so single-node and fleet serving cannot drift apart.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simdb"
)

// DetectRequest is the /v1/detect payload. PrepWorkers/InferWorkers, when
// positive, override the service's default pool sizes for this pipelined
// request; they are ignored when Pipelined is false. DeadlineMillis, when
// positive, bounds the whole request: stages past the deadline degrade to
// Phase-1 answers instead of running.
type DetectRequest struct {
	Database     string   `json:"database"`
	Tables       []string `json:"tables,omitempty"` // empty = all tables
	Pipelined    bool     `json:"pipelined"`
	PrepWorkers  int      `json:"prep_workers,omitempty"`
	InferWorkers int      `json:"infer_workers,omitempty"`
	// Workers overrides the work-stealing pool size for this pipelined
	// request; 0 keeps the service default (or derives from the legacy
	// prep/infer overrides above when those are set).
	Workers int `json:"workers,omitempty"`
	// Lookahead and BatchChunks override the scan-prefetch window and the
	// cross-table batching cap (core.ExecMode semantics: 0 = service
	// default, negative = disable the feature for this request).
	Lookahead      int   `json:"lookahead,omitempty"`
	BatchChunks    int   `json:"batch_chunks,omitempty"`
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Trace requests the span tree of this detection inline in the
	// response: per-stage timings for every table, relative to request
	// start.
	Trace bool `json:"trace,omitempty"`
	// Quantize, when set, overrides the process-wide int8 quantized-inference
	// default (tasted -quantize) for this request: true opts in, false opts
	// out. Ignored on CPUs without the required SIMD support and on requests
	// served through the cross-request batcher, which always follows the
	// process default.
	Quantize *bool `json:"quantize,omitempty"`
	// ModelVersion, when positive, pins this request to a published registry
	// version instead of the serving model — e.g. to compare a candidate
	// against the live model, or to keep a tenant on a validated version
	// across a fleet-wide swap. Requires a registry (tasted -registry);
	// unknown versions are 404.
	ModelVersion int `json:"model_version,omitempty"`
}

// RouteKey is the consistent-hash key a fleet coordinator shards this
// request by: the tenant database, refined to database/table for
// single-table requests. Whole-database (and multi-table) batches stay on
// one replica to reuse its connection; single-table requests — the common
// API-gateway shape — spread across the fleet at the same granularity the
// latent cache is keyed on (database.table), so each replica's cache stays
// hot for the tables it owns.
func (r *DetectRequest) RouteKey() string {
	if len(r.Tables) == 1 {
		return r.Database + "/" + r.Tables[0]
	}
	return r.Database
}

// DetectColumn is one column's outcome in a DetectResponse.
type DetectColumn struct {
	Column  string   `json:"column"`
	Types   []string `json:"types"`
	Phase   int      `json:"phase"`
	Scanned bool     `json:"scanned"`
	// Degraded marks a column whose Phase-2 answer was unavailable (scan
	// failure, deadline); Types then carries the Phase-1 fallback.
	Degraded bool `json:"degraded,omitempty"`
	// DegradeReason explains the degradation.
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// DetectTable is one table's outcome.
type DetectTable struct {
	Table   string         `json:"table"`
	Columns []DetectColumn `json:"columns"`
	// Skipped marks a table the request deadline expired before reaching:
	// no detection was attempted, Columns is empty, SkipReason explains.
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
}

// DetectResponse is the /v1/detect reply.
type DetectResponse struct {
	Database       string        `json:"database"`
	Tables         []DetectTable `json:"tables"`
	DurationMillis int64         `json:"duration_ms"`
	TotalColumns   int           `json:"total_columns"`
	ScannedColumns int           `json:"scanned_columns"`
	// Degraded reports that at least one column fell back to Phase 1 or
	// that the deadline cut the batch short.
	Degraded bool `json:"degraded"`
	// DegradedColumns counts columns answered by the degradation ladder.
	DegradedColumns int `json:"degraded_columns"`
	// Retries counts transient-error retries spent on this request.
	Retries int      `json:"retries"`
	Errors  []string `json:"errors,omitempty"`
	// ModelVersion is the registry version that served this request: the
	// per-request override when one was given, else the serving version.
	// Omitted when the model has no registry identity.
	ModelVersion int `json:"model_version,omitempty"`
	// Trace is the request's span tree, present when the request set
	// "trace": true.
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// APIError is a request failure with the HTTP status it maps to. Detect
// returns one instead of writing to a ResponseWriter so non-HTTP front ends
// can translate it themselves.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string { return e.Msg }

func apiErrorf(status int, format string, args ...interface{}) *APIError {
	return &APIError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// flightResult is the unit singleflight shares between coalesced callers:
// a detect outcome, success or API error alike.
type flightResult struct {
	resp   *DetectResponse
	apiErr *APIError
}

// flightKey identifies identical detect requests for singleflight
// coalescing. The route-key prefix matches the granularity the fleet
// coordinator shards by, so on a replica the colliding traffic is exactly
// the traffic routed to collide there; the canonical JSON body makes any
// parameter difference (tables, deadline, mode, quantize) a different key.
func flightKey(req DetectRequest) string {
	body, err := json.Marshal(req)
	if err != nil {
		return "" // unkeyable: caller runs without coalescing
	}
	return req.RouteKey() + "\x00" + string(body)
}

// Detect executes one detection request end-to-end and returns the
// (always-200) response, or an APIError for requests that cannot be
// attempted at all (bad parameters, unknown tenant, non-deadline detection
// failures). Deadline expiry is not an error: the response comes back
// degraded per the DESIGN.md §7 ladder. Outcome metrics are recorded here,
// so every transport shares one ledger.
//
// Concurrent identical requests are coalesced: while one execution is in
// flight, callers with the same flightKey wait for its result instead of
// recomputing all four stages. Traced requests bypass coalescing (their
// response embeds a per-request span tree), as do requests whose body
// cannot be canonicalized. A waiting caller whose context dies before the
// leader finishes gets 503; the leader is never cancelled by followers.
func (s *Service) Detect(ctx context.Context, req DetectRequest) (*DetectResponse, *APIError) {
	run := func() flightResult {
		resp, apiErr := s.detect(ctx, req)
		if apiErr != nil {
			detectOutcomes["error"].Inc()
		}
		return flightResult{resp: resp, apiErr: apiErr}
	}
	key := ""
	if !req.Trace {
		key = flightKey(req)
	}
	if key == "" {
		r := run()
		return r.resp, r.apiErr
	}
	r, _, err := s.flight.Do(ctx, key, func() (flightResult, error) { return run(), nil })
	if err != nil {
		// Follower context died while waiting, or the leader panicked:
		// nothing was computed for this caller.
		detectOutcomes["error"].Inc()
		return nil, apiErrorf(http.StatusServiceUnavailable, "coalesced request failed: %v", err)
	}
	return r.resp, r.apiErr
}

func (s *Service) detect(ctx context.Context, req DetectRequest) (*DetectResponse, *APIError) {
	if req.DeadlineMillis < 0 {
		return nil, apiErrorf(http.StatusBadRequest, "deadline_ms must be ≥ 0")
	}
	if req.Workers < 0 || req.PrepWorkers < 0 || req.InferWorkers < 0 {
		return nil, apiErrorf(http.StatusBadRequest, "worker counts must be ≥ 0")
	}
	server, ok := s.tenant(req.Database)
	if !ok {
		return nil, apiErrorf(http.StatusNotFound, "unknown database %q", req.Database)
	}

	if req.Quantize != nil {
		ctx = core.WithQuantize(ctx, *req.Quantize)
	}
	// Pin the request's model here, once: the version label below is derived
	// from the same pointer, so even a hot-swap racing this request cannot
	// produce a response computed on one model but labeled with another's
	// version.
	m := s.detector.Model()
	if req.ModelVersion > 0 {
		var apiErr *APIError
		m, apiErr = s.modelForVersion(ctx, req.ModelVersion)
		if apiErr != nil {
			return nil, apiErr
		}
	}
	ctx = core.WithModel(ctx, m)
	modelVersion := s.versionOf(m)
	var root *obs.Span
	if req.Trace {
		ctx, root = obs.NewTrace(ctx, "detect "+req.Database)
	}
	deadline := time.Duration(req.DeadlineMillis) * time.Millisecond
	if deadline == 0 {
		deadline = s.defaultDeadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	resp := &DetectResponse{Database: req.Database, ModelVersion: modelVersion}
	start := time.Now()
	// finish stamps the duration and trace and records the request's
	// outcome metrics.
	finish := func() *DetectResponse {
		elapsed := time.Since(start)
		resp.DurationMillis = elapsed.Milliseconds()
		if root != nil {
			root.End()
			node := root.Node()
			resp.Trace = &node
		}
		outcome := "ok"
		if resp.Degraded {
			outcome = "degraded"
		}
		detectOutcomes[outcome].Inc()
		detectRequestSeconds.ObserveDuration(elapsed)
		if resp.TotalColumns > 0 {
			detectScannedRatio.Observe(float64(resp.ScannedColumns) / float64(resp.TotalColumns))
		}
		return resp
	}
	if len(req.Tables) == 0 {
		mode := core.SequentialMode
		if req.Pipelined {
			mode = s.defaultMode
			mode.Pipelined = true
			if req.PrepWorkers > 0 || req.InferWorkers > 0 {
				// Legacy per-kind overrides: adopt them and re-derive the
				// pool size from their sum instead of the default Workers.
				if req.PrepWorkers > 0 {
					mode.PrepWorkers = req.PrepWorkers
				}
				if req.InferWorkers > 0 {
					mode.InferWorkers = req.InferWorkers
				}
				mode.Workers = 0
			}
			if req.Workers > 0 {
				mode.Workers = req.Workers
			}
			if req.Lookahead != 0 {
				mode.Lookahead = req.Lookahead
			}
			if req.BatchChunks != 0 {
				mode.BatchChunks = req.BatchChunks
			}
		}
		rep, err := s.detector.DetectDatabase(ctx, server, req.Database, mode)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// The deadline fired before any table resolved: still a
				// valid, fully degraded response — not a server error.
				resp.Degraded = true
				resp.Errors = append(resp.Errors, err.Error())
				return finish(), nil
			}
			return nil, apiErrorf(http.StatusInternalServerError, "detection failed: %v", err)
		}
		for _, tr := range rep.Tables {
			resp.Tables = append(resp.Tables, toDetectTable(tr))
		}
		resp.TotalColumns = rep.TotalColumns
		resp.ScannedColumns = rep.ScannedColumns
		resp.DegradedColumns = rep.DegradedColumns
		resp.Retries = rep.Retries
		resp.Degraded = rep.DegradedColumns > 0
		for _, e := range rep.Errors {
			resp.Errors = append(resp.Errors, e.Error())
			if errors.Is(e, context.DeadlineExceeded) {
				resp.Degraded = true
			}
		}
	} else {
		var conn *simdb.Conn
		var err error
		if conn, err = server.Connect(ctx, req.Database); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				resp.Degraded = true
				resp.Errors = append(resp.Errors, err.Error())
				return finish(), nil
			}
			return nil, apiErrorf(http.StatusInternalServerError, "connect: %v", err)
		}
		defer conn.Close()
		for i, table := range req.Tables {
			if err := ctx.Err(); err != nil {
				// The request context is dead: every further DetectTable
				// call would fail identically, so stop issuing them and
				// record the remaining tables as skipped rather than
				// appending one duplicate error per table.
				resp.Degraded = true
				for _, rest := range req.Tables[i:] {
					resp.Tables = append(resp.Tables, DetectTable{
						Table: rest, Columns: []DetectColumn{},
						Skipped: true, SkipReason: err.Error(),
					})
				}
				resp.Errors = append(resp.Errors,
					fmt.Sprintf("%v: skipped %d remaining tables", err, len(req.Tables)-i))
				break
			}
			tr, err := s.detector.DetectTable(ctx, conn, req.Database, table)
			if err != nil {
				resp.Errors = append(resp.Errors, err.Error())
				if errors.Is(err, context.DeadlineExceeded) {
					resp.Degraded = true
				}
				continue
			}
			resp.Tables = append(resp.Tables, toDetectTable(tr))
			resp.TotalColumns += len(tr.Columns)
			resp.ScannedColumns += tr.ScannedColumns
			resp.DegradedColumns += tr.DegradedColumns()
			// Per-call retry counts, not a before/after diff of the global
			// fault ledger: concurrent requests would otherwise leak their
			// retries into each other's responses.
			resp.Retries += tr.Retries
		}
		if resp.DegradedColumns > 0 {
			resp.Degraded = true
		}
	}
	return finish(), nil
}

func toDetectTable(tr *core.TableResult) DetectTable {
	out := DetectTable{Table: tr.Table}
	for _, c := range tr.Columns {
		types := c.Admitted
		if types == nil {
			types = []string{}
		}
		out.Columns = append(out.Columns, DetectColumn{
			Column:        c.Column,
			Types:         types,
			Phase:         c.Phase,
			Scanned:       c.Phase == 2,
			Degraded:      c.Degraded,
			DegradeReason: c.DegradeReason,
		})
	}
	return out
}
