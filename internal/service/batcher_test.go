package service

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/simdb"
)

// batchedService builds a service with micro-batching enabled around its own
// detector (sharing the test binary's trained model), so enabling batching
// never leaks into the plain-service tests that share testService's detector.
func batchedService(t *testing.T, window time.Duration, maxBatch int) *Service {
	t.Helper()
	testService(t) // ensure the shared model is trained
	det, err := core.NewDetector(shared.det.Model(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(det)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenantdb", shared.ds.Test)
	svc.RegisterTenant("tenantdb", server)
	svc.EnableBatching(window, maxBatch)
	t.Cleanup(svc.Close)
	return svc
}

// TestBatcherCoalescesConcurrentDetects is the acceptance scenario for the
// micro-batcher: N concurrent /v1/detect requests for distinct tables must
// share Phase-2 model forwards — fewer batches than submissions, visible in
// /v1/stats — while every request's per-column results stay identical to an
// unbatched run.
func TestBatcherCoalescesConcurrentDetects(t *testing.T) {
	plain, ds := testService(t)

	// Unbatched baseline, and the set of tables that actually reach Phase 2
	// (only those submit content batches to coalesce).
	var tables []string
	baseline := make(map[string]string)
	for _, tb := range ds.Test {
		rec := doJSON(t, plain.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{tb.Name}})
		if rec.Code != http.StatusOK {
			t.Fatalf("baseline status %d: %s", rec.Code, rec.Body)
		}
		var resp DetectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		cols, err := json.Marshal(resp.Tables)
		if err != nil {
			t.Fatal(err)
		}
		baseline[tb.Name] = string(cols)
		if resp.ScannedColumns > 0 && len(tables) < 4 {
			tables = append(tables, tb.Name)
		}
	}
	if len(tables) < 2 {
		t.Fatalf("need ≥ 2 tables with Phase-2 columns to coalesce, have %d", len(tables))
	}

	// A window much longer than per-request prep guarantees the concurrent
	// submissions overlap in the queue.
	svc := batchedService(t, 150*time.Millisecond, 64)
	h := svc.Handler()
	got := make([]string, len(tables))
	codes := make([]int, len(tables))
	var wg sync.WaitGroup
	for i, name := range tables {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{name}})
			codes[i] = rec.Code
			var resp DetectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				return
			}
			cols, err := json.Marshal(resp.Tables)
			if err != nil {
				return
			}
			got[i] = string(cols)
		}(i, name)
	}
	wg.Wait()
	for i, name := range tables {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d (%s): status %d", i, name, codes[i])
		}
		if got[i] != baseline[name] {
			t.Errorf("table %s: batched results differ from unbatched baseline\nbatched:   %s\nunbatched: %s", name, got[i], baseline[name])
		}
	}

	rec := doJSON(t, h, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	bs := stats.Batcher
	if bs == nil {
		t.Fatal("/v1/stats missing batcher block with batching enabled")
	}
	if bs.Submissions != len(tables) {
		t.Fatalf("submissions = %d, want %d", bs.Submissions, len(tables))
	}
	if bs.Batches >= bs.Submissions {
		t.Fatalf("batches = %d, submissions = %d: nothing coalesced", bs.Batches, bs.Submissions)
	}
	if bs.CoalescedBatches == 0 {
		t.Fatal("no batch merged more than one submission")
	}
	if bs.BatchedChunks < bs.Submissions {
		t.Fatalf("batched chunks = %d < submissions = %d", bs.BatchedChunks, bs.Submissions)
	}
	if bs.MaxBatchChunks < 2 {
		t.Fatalf("max batch chunks = %d, want ≥ 2", bs.MaxBatchChunks)
	}
}

// TestBatcherDeadlineDegradedNot500: with batching enabled, a deadline that
// expires while work is queued or in flight inside the micro-batcher must
// surface as a 200 degraded response — the degradation ladder from the
// fault-tolerance PR must hold through the batcher.
func TestBatcherDeadlineDegradedNot500(t *testing.T) {
	// A window far beyond the deadline forces the deadline-aware flush (or
	// the waiter's own ctx) to resolve the request, never the window timer.
	svc := batchedService(t, 2*time.Second, 64)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", DeadlineMillis: 30})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("a 30 ms deadline against a 2 s batch window must degrade: %s", rec.Body)
	}
	for _, tb := range resp.Tables {
		for _, c := range tb.Columns {
			if c.Types == nil {
				t.Fatal("types must serialize as [] not null")
			}
			if c.Degraded && c.DegradeReason == "" {
				t.Fatal("degraded column without reason")
			}
		}
	}
}

// TestBatcherDropsDeadSubmissions: a submission whose context is already
// cancelled must get the context error back (the caller degrades it) and be
// dropped at flush without reaching the model.
func TestBatcherDropsDeadSubmissions(t *testing.T) {
	testService(t)
	b := NewBatcher(20*time.Millisecond, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.InferContentBatch(ctx, shared.det.Model(), make([]adtd.ContentRequest, 1), 5); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	b.Stop() // drains the queue, counting the drop
	if got := b.Stats().DeadlineDropped; got != 1 {
		t.Fatalf("DeadlineDropped = %d, want 1", got)
	}
	if got := b.Stats().Batches; got != 0 {
		t.Fatalf("Batches = %d: a dead submission must not reach the model", got)
	}
}

// TestBatcherStoppedRunsDirect: after Stop the batcher must keep answering —
// unbatched — so shutdown never wedges in-flight detection.
func TestBatcherStoppedRunsDirect(t *testing.T) {
	testService(t)
	b := NewBatcher(20*time.Millisecond, 8)
	b.Stop()
	out, err := b.InferContentBatch(context.Background(), shared.det.Model(), nil, 5)
	if err != nil || out != nil {
		t.Fatalf("empty submission after Stop: out=%v err=%v", out, err)
	}
	if got := b.Stats().Submissions; got != 0 {
		t.Fatalf("Submissions = %d after Stop, want 0 (direct path)", got)
	}
}
