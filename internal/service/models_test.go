package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/registry"
	"repro/internal/simdb"
)

// registryService builds a service around a private copy of the shared
// trained model (so swap/feedback tests never mutate the detector other
// tests share) plus an in-memory model registry.
func registryService(t *testing.T) (*Service, *registry.Registry, *corpus.Dataset) {
	t.Helper()
	testService(t) // ensure the shared model is trained
	var buf bytes.Buffer
	if err := shared.det.Model().Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := shared.det.Model().Sibling()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	m.SetEval()
	det, err := core.NewDetector(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(det)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenantdb", shared.ds.Test)
	svc.RegisterTenant("tenantdb", server)
	reg, err := registry.Open(simdb.NewServer(simdb.NoLatency), "", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return svc, reg, shared.ds
}

// TestModelRegistryEndpoints walks the closed loop the registry enables:
// publish the serving weights, adapt them with online feedback (which must
// drop their registry identity — the weights drifted), publish the variant
// (which must dedup against the base), then hot-swap back to the base.
func TestModelRegistryEndpoints(t *testing.T) {
	svc, reg, ds := registryService(t)
	svc.AttachRegistry(reg, "taste", 0)
	h := svc.Handler()

	// Publish the serving weights as version 1.
	rec := doJSON(t, h, http.MethodPost, "/v1/models/publish", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("publish status %d: %s", rec.Code, rec.Body)
	}
	var res1 registry.PublishResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res1); err != nil {
		t.Fatal(err)
	}
	if res1.Version != 1 || res1.NewPages != res1.Pages {
		t.Fatalf("first publish must store every page: %+v", res1)
	}

	// Detect responses now carry the serving version.
	rec = doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{ds.Test[0].Name}})
	if rec.Code != http.StatusOK {
		t.Fatalf("detect status %d: %s", rec.Code, rec.Body)
	}
	var dresp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.ModelVersion != 1 {
		t.Fatalf("detect model_version = %d, want 1", dresp.ModelVersion)
	}

	// Online feedback mutates the serving weights in place: they no longer
	// match version 1, so the serving version must reset to 0 — otherwise a
	// later swap "back to 1" would silently serve the drifted weights.
	table := ds.Test[0]
	rec = doJSON(t, h, http.MethodPost, "/v1/feedback", FeedbackRequest{
		Database: "tenantdb", Table: table.Name, Column: table.Columns[0].Name, Labels: []string{"email"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", rec.Code, rec.Body)
	}
	if got := svc.ServingVersion(); got != 0 {
		t.Fatalf("serving version after feedback = %d, want 0 (drifted)", got)
	}

	// Publishing the adapted weights dedups against version 1: feedback only
	// touches the classifier heads, so the encoder pages are shared.
	rec = doJSON(t, h, http.MethodPost, "/v1/models/publish", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("second publish status %d: %s", rec.Code, rec.Body)
	}
	var res2 registry.PublishResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Version != 2 {
		t.Fatalf("second publish version = %d, want 2", res2.Version)
	}
	if res2.NewPages >= res2.Pages {
		t.Fatalf("fine-tuned publish must share pages with the base: %+v", res2)
	}
	if res2.SharedFrac <= 0 {
		t.Fatalf("shared fraction = %v, want > 0", res2.SharedFrac)
	}

	// The registry listing shows both versions and the serving block.
	rec = doJSON(t, h, http.MethodGet, "/v1/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("models status %d: %s", rec.Code, rec.Body)
	}
	var listing struct {
		Models  map[string][]int `json:"models"`
		Serving ModelBlock       `json:"serving"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if got := listing.Models["taste"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("versions = %v, want [1 2]", got)
	}
	if listing.Serving.Version != 2 || listing.Serving.Registry == nil {
		t.Fatalf("serving block = %+v", listing.Serving)
	}
	if listing.Serving.Registry.DedupRatio <= 1 {
		t.Fatalf("dedup ratio = %v, want > 1", listing.Serving.Registry.DedupRatio)
	}

	// Hot-swap back to the base version: a fresh materialization, not the
	// drifted object.
	before := svc.detector.Model()
	rec = doJSON(t, h, http.MethodPost, "/v1/models/swap", SwapRequest{Version: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("swap status %d: %s", rec.Code, rec.Body)
	}
	var sw SwapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Version != 1 || sw.OldVersion != 2 || sw.Generation == sw.OldGeneration {
		t.Fatalf("swap response = %+v", sw)
	}
	if svc.detector.Model() == before {
		t.Fatal("swap did not replace the serving model")
	}
	if got := svc.ServingVersion(); got != 1 {
		t.Fatalf("serving version after swap = %d, want 1", got)
	}

	// /v1/stats mirrors the model block.
	rec = doJSON(t, h, http.MethodGet, "/v1/stats", nil)
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Model.Version != 1 || stats.Model.Swaps != 1 || stats.Model.Name != "taste" {
		t.Fatalf("stats model block = %+v", stats.Model)
	}

	// Swap with version 0 means "latest".
	rec = doJSON(t, h, http.MethodPost, "/v1/models/swap", SwapRequest{})
	if rec.Code != http.StatusOK {
		t.Fatalf("swap-latest status %d: %s", rec.Code, rec.Body)
	}
	if got := svc.ServingVersion(); got != 2 {
		t.Fatalf("serving version after swap-latest = %d, want 2", got)
	}
}

// TestModelEndpointsWithoutRegistry: every registry-backed surface must fail
// loudly — not panic, not pretend — when no registry is attached.
func TestModelEndpointsWithoutRegistry(t *testing.T) {
	svc, ds := testService(t)
	h := svc.Handler()
	if rec := doJSON(t, h, http.MethodGet, "/v1/models", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("models status %d, want 404", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodPost, "/v1/models/swap", SwapRequest{Version: 1}); rec.Code != http.StatusBadRequest {
		t.Fatalf("swap status %d, want 400", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodPost, "/v1/models/publish", struct{}{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("publish status %d, want 400", rec.Code)
	}
	rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Tables: []string{ds.Test[0].Name}, ModelVersion: 3,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("detect with model_version status %d, want 400", rec.Code)
	}
}

// TestSwapUnknownVersionLeavesServing: a failed swap (version never
// published) must leave the serving model untouched and report the failure.
func TestSwapUnknownVersionLeavesServing(t *testing.T) {
	svc, reg, _ := registryService(t)
	svc.AttachRegistry(reg, "taste", 0)
	h := svc.Handler()
	rec := doJSON(t, h, http.MethodPost, "/v1/models/publish", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("publish status %d: %s", rec.Code, rec.Body)
	}
	before := svc.detector.Model()
	if rec := doJSON(t, h, http.MethodPost, "/v1/models/swap", SwapRequest{Version: 99}); rec.Code != http.StatusNotFound {
		t.Fatalf("swap status %d, want 404: %s", rec.Code, rec.Body)
	}
	if svc.detector.Model() != before {
		t.Fatal("failed swap replaced the serving model")
	}
	if got := svc.ServingVersion(); got != 1 {
		t.Fatalf("serving version = %d, want 1", got)
	}
}

// TestHotSwapUnderDetectLoadConsistency is the acceptance scenario for
// zero-downtime hot-swap, meant to run under -race: /v1/detect traffic is
// hammered while the serving model is swapped back and forth between two
// published versions whose outputs differ. Every response must be byte-equal
// to the reference answer of exactly one version AND carry that version's
// model_version label — a response mixing two models' weights, or labeled
// with one version but computed by the other, fails.
func TestHotSwapUnderDetectLoadConsistency(t *testing.T) {
	svc, reg, ds := registryService(t)
	svc.AttachRegistry(reg, "taste", 0)
	h := svc.Handler()
	ctx := context.Background()

	// Version 1: the serving weights.
	rec := doJSON(t, h, http.MethodPost, "/v1/models/publish", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("publish status %d: %s", rec.Code, rec.Body)
	}
	// Version 2: a feedback-adapted variant, built offline so the serving
	// model itself never drifts during the test.
	m2, err := svc.detector.Model().Sibling()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.detector.Model().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	fb := []adtd.FeedbackExample{{Table: info, Column: 0, Labels: []string{"email"}}}
	if err := m2.ApplyFeedback(fb, 0.3, 40); err != nil {
		t.Fatal(err)
	}
	m2.SetEval()
	if _, err := reg.Publish(ctx, "taste", m2.Params()); err != nil {
		t.Fatal(err)
	}

	// Reference answers, one per version, via the per-request override.
	table := ds.Test[0].Name
	refJSON := func(version int) string {
		t.Helper()
		rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{
			Database: "tenantdb", Tables: []string{table}, ModelVersion: version,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("reference detect v%d status %d: %s", version, rec.Code, rec.Body)
		}
		var resp DetectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ModelVersion != version {
			t.Fatalf("reference detect v%d labeled %d", version, resp.ModelVersion)
		}
		resp.DurationMillis = 0
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	refs := map[int]string{1: refJSON(1), 2: refJSON(2)}
	if refs[1] == refs[2] {
		t.Fatal("the two published versions answer identically; the consistency check would be vacuous")
	}

	// Hammer detects while a swapper flips the serving version.
	const workers, rounds, swapRounds = 4, 12, 24
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{table}})
				if rec.Code != http.StatusOK {
					errs <- rec.Body.String()
					return
				}
				var resp DetectResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err.Error()
					return
				}
				v := resp.ModelVersion
				if v != 1 && v != 2 {
					errs <- "response without a valid model_version"
					return
				}
				resp.DurationMillis = 0
				got, err := json.Marshal(resp)
				if err != nil {
					errs <- err.Error()
					return
				}
				if string(got) != refs[v] {
					errs <- "response labeled v" + string(rune('0'+v)) + " does not match that version's reference answer"
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swapRounds; i++ {
			if _, apiErr := svc.Swap(ctx, 1+(i%2)); apiErr != nil {
				errs <- apiErr.Msg
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if got := svc.ModelStats().Swaps; got != swapRounds {
		t.Fatalf("swaps = %d, want %d", got, swapRounds)
	}
}
