// Model registry integration: zero-downtime hot-swap and per-request model
// version overrides. With a registry attached the service closes the
// train → publish → serve loop:
//
//	GET  /v1/models          registry contents + the serving model
//	POST /v1/models/swap     {"version": N}  hot-swap to a published version
//	POST /v1/models/publish  {}              publish the serving weights
//
// A swap materializes the requested version from the registry's
// content-addressed pages into a fresh sibling model, then atomically
// replaces the detector's serving pointer. In-flight requests finish on the
// model they captured at admission; new requests see the new weights
// immediately. No cache is flushed — latent and result keys embed the
// process-unique weight generation, so the two models' entries cannot
// alias, and entries for the returning version are still valid if it swaps
// back. A failed materialization (missing version, corrupt page, shape
// mismatch) leaves the serving model untouched: Model.Load validates the
// whole checkpoint before installing anything.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/adtd"
	"repro/internal/registry"
)

// maxMaterializedVersions bounds the cache of models materialized for
// per-request version overrides; the least recently materialized is dropped.
const maxMaterializedVersions = 8

// AttachRegistry connects a model registry. name is the registry name the
// serving model publishes under and version the serving model's version (0
// when the serving weights were not loaded from the registry). Call before
// serving traffic.
func (s *Service) AttachRegistry(reg *registry.Registry, name string, version int) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.registry = reg
	s.modelName = name
	s.servingVersion.Store(int64(version))
	if version > 0 {
		s.verCache = map[int]*adtd.Model{version: s.detector.Model()}
		s.verOrder = []int{version}
	}
	servingVersionGauge.Set(int64(version))
}

// Registry returns the attached registry, or nil.
func (s *Service) Registry() *registry.Registry {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.registry
}

// ServingVersion returns the registry version of the serving model (0 when
// unknown or no registry is attached).
func (s *Service) ServingVersion() int { return int(s.servingVersion.Load()) }

// cachedVersion returns a previously materialized model for version, if any.
func (s *Service) cachedVersion(version int) *adtd.Model {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.verCache[version]
}

// cacheVersion remembers a materialized model, evicting the oldest entry
// past the cap (never the serving version's).
func (s *Service) cacheVersion(version int, m *adtd.Model) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.verCache == nil {
		s.verCache = make(map[int]*adtd.Model)
	}
	if _, ok := s.verCache[version]; !ok {
		s.verOrder = append(s.verOrder, version)
	}
	s.verCache[version] = m
	serving := int(s.servingVersion.Load())
	for len(s.verOrder) > maxMaterializedVersions {
		evict, rest := s.verOrder[0], s.verOrder[1:]
		if evict == serving && len(rest) > 0 {
			// Keep the serving version cached; rotate it to the back.
			s.verOrder = append(rest, evict)
			continue
		}
		s.verOrder = rest
		delete(s.verCache, evict)
	}
}

// versionOf returns the registry version a model object was materialized or
// published as, or 0 when it has none (no registry, never published, or its
// weights drifted since). Deriving the version from the model pointer — not
// from a separate serving-version read — is what keeps a detect response's
// model_version label coherent with the weights that computed it during a
// concurrent hot-swap.
func (s *Service) versionOf(m *adtd.Model) int {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for v, cm := range s.verCache {
		if cm == m {
			return v
		}
	}
	return 0
}

// noteServingDrift records that the serving weights changed in place (online
// feedback): they no longer match any published version. The serving version
// resets to 0 and the stale cache entry is dropped, so a later swap back to
// that version rematerializes pristine weights from the registry instead of
// serving the drifted object.
func (s *Service) noteServingDrift() {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.registry == nil {
		return
	}
	old := int(s.servingVersion.Swap(0))
	if old > 0 {
		delete(s.verCache, old)
		for i, v := range s.verOrder {
			if v == old {
				s.verOrder = append(s.verOrder[:i], s.verOrder[i+1:]...)
				break
			}
		}
	}
	servingVersionGauge.Set(0)
}

// modelForVersion materializes (or returns the cached) model for a
// published version. The checkpoint is reassembled from content-verified
// pages and loaded through Model.Load's all-or-nothing path into a fresh
// sibling of the serving model.
func (s *Service) modelForVersion(ctx context.Context, version int) (*adtd.Model, *APIError) {
	s.regMu.Lock()
	reg, name := s.registry, s.modelName
	s.regMu.Unlock()
	if reg == nil {
		return nil, apiErrorf(http.StatusBadRequest, "no model registry attached")
	}
	if m := s.cachedVersion(version); m != nil {
		return m, nil
	}
	ckpt, err := reg.Checkpoint(ctx, name, version)
	if err != nil {
		return nil, apiErrorf(http.StatusNotFound, "model %s@%d: %v", name, version, err)
	}
	m, err := s.detector.Model().Sibling()
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "materialize %s@%d: %v", name, version, err)
	}
	if err := m.Load(bytes.NewReader(ckpt)); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "load %s@%d: %v", name, version, err)
	}
	m.SetEval()
	s.cacheVersion(version, m)
	return m, nil
}

// ModelBlock is the /v1/stats (and fleet-scraped) view of the serving
// model: which registry version is live, its weight generation, and how
// many hot-swaps the replica has performed.
type ModelBlock struct {
	Name       string          `json:"name,omitempty"`
	Version    int             `json:"version,omitempty"`
	Generation uint64          `json:"generation"`
	Swaps      int64           `json:"swaps"`
	Registry   *registry.Stats `json:"registry,omitempty"`
}

// ModelStats snapshots the serving-model block.
func (s *Service) ModelStats() ModelBlock {
	mb := ModelBlock{
		Generation: s.detector.Model().Generation(),
		Version:    int(s.servingVersion.Load()),
		Swaps:      s.swaps.Load(),
	}
	s.regMu.Lock()
	reg, name := s.registry, s.modelName
	s.regMu.Unlock()
	if reg != nil {
		mb.Name = name
		st := reg.Stats()
		mb.Registry = &st
	}
	return mb
}

// handleModels serves GET /v1/models: registry contents plus the serving
// model block.
func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	reg := s.Registry()
	if reg == nil {
		writeError(w, http.StatusNotFound, "no model registry attached")
		return
	}
	versions := make(map[string][]int)
	for _, name := range reg.Models() {
		versions[name] = reg.Versions(name)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"models":  versions,
		"serving": s.ModelStats(),
	})
}

// SwapRequest is the /v1/models/swap payload. Version 0 means "latest".
type SwapRequest struct {
	Version int `json:"version"`
}

// SwapResponse reports a completed hot-swap.
type SwapResponse struct {
	Name          string `json:"name"`
	Version       int    `json:"version"`
	OldVersion    int    `json:"old_version"`
	OldGeneration uint64 `json:"old_generation"`
	Generation    uint64 `json:"generation"`
}

// Swap hot-swaps the serving model to the given published version (0 =
// latest). Shared by the HTTP handler and in-process callers (fleet
// harness, tests).
func (s *Service) Swap(ctx context.Context, version int) (*SwapResponse, *APIError) {
	s.regMu.Lock()
	reg, name := s.registry, s.modelName
	s.regMu.Unlock()
	if reg == nil {
		return nil, apiErrorf(http.StatusBadRequest, "no model registry attached")
	}
	if version == 0 {
		latest, ok := reg.Latest(name)
		if !ok {
			return nil, apiErrorf(http.StatusNotFound, "model %q has no published versions", name)
		}
		version = latest
	}
	m, apiErr := s.modelForVersion(ctx, version)
	if apiErr != nil {
		modelSwapErrorsTotal.Inc()
		return nil, apiErr
	}
	old := s.detector.SwapModel(m)
	oldVersion := int(s.servingVersion.Swap(int64(version)))
	s.swaps.Add(1)
	modelSwapsTotal.Inc()
	servingVersionGauge.Set(int64(version))
	return &SwapResponse{
		Name:          name,
		Version:       version,
		OldVersion:    oldVersion,
		OldGeneration: old.Generation(),
		Generation:    m.Generation(),
	}, nil
}

func (s *Service) handleModelSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, apiErr := s.Swap(r.Context(), req.Version)
	if apiErr != nil {
		writeError(w, apiErr.Status, "%s", apiErr.Msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelPublish serves POST /v1/models/publish: the serving model's
// current weights become the next registry version — the online-feedback
// path to a durable, swappable variant. The publish dedups against earlier
// versions page by page, so a feedback-adapted model (classifier heads
// changed, encoder shared) stores only its changed pages.
func (s *Service) handleModelPublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.regMu.Lock()
	reg, name := s.registry, s.modelName
	s.regMu.Unlock()
	if reg == nil {
		writeError(w, http.StatusBadRequest, "no model registry attached")
		return
	}
	m := s.detector.Model()
	res, err := reg.Publish(r.Context(), name, m.Params())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "publish: %v", err)
		return
	}
	// The serving weights now have a registry identity: record it so stats
	// and responses report the published version, and cache the model so a
	// later swap back to this version is free.
	s.servingVersion.Store(int64(res.Version))
	servingVersionGauge.Set(int64(res.Version))
	s.cacheVersion(res.Version, m)
	writeJSON(w, http.StatusOK, res)
}
