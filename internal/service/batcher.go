// Cross-request micro-batching for Phase-2 content inference. Concurrent
// /v1/detect requests each produce small PredictContentBatch calls (one per
// table); the Batcher coalesces calls that arrive within a short window into
// one larger model batch, amortizing kernel dispatch and classifier overhead
// across requests, then demultiplexes the per-chunk results back to their
// submitters. Batching changes throughput only — each chunk's rows are
// bit-identical to an unbatched call because the model's block-diagonal
// batch mask isolates every chunk (see adtd.PredictContentBatch).
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
)

// batcherDeadlineMargin is subtracted from a submission's context deadline
// when deciding how long it may sit in the queue: a flush is forced early
// rather than letting the window expire a waiter.
const batcherDeadlineMargin = 5 * time.Millisecond

// BatcherStats counts the micro-batcher's activity. All counters are
// cumulative since the batcher started.
type BatcherStats struct {
	// Submissions counts InferContentBatch calls routed to the batcher.
	Submissions int
	// Batches counts model forwards; fewer batches than submissions means
	// coalescing happened.
	Batches int
	// CoalescedBatches counts model forwards that merged ≥ 2 submissions.
	CoalescedBatches int
	// BatchedChunks counts table chunks classified through the batcher.
	BatchedChunks int
	// MaxBatchChunks is the largest chunk count in one model forward.
	MaxBatchChunks int
	// QueueDelay is the summed time submissions spent queued before their
	// flush started; QueueDelay/Submissions is the mean added latency.
	QueueDelay time.Duration
	// DeadlineDropped counts submissions whose context died while queued;
	// they were answered with the context error (the detector degrades
	// them) and never reached the model.
	DeadlineDropped int
	// Panics counts model forwards that panicked. Every submitter in the
	// panicked batch is answered with an error (the detector degrades those
	// tables); the batcher itself keeps running.
	Panics int
}

// batchCall is one queued InferContentBatch submission. The model is the
// one the submitting request captured at admission; calls pinned to
// different models (e.g. across a hot-swap, or a per-request version
// override) are never coalesced into the same forward.
type batchCall struct {
	ctx      context.Context
	model    *adtd.Model
	reqs     []adtd.ContentRequest
	n        int
	enqueued time.Time
	out      chan batchResult // buffered; flush never blocks on it
}

type batchResult struct {
	probs [][][]float64
	err   error
}

// Batcher implements core.ContentInferencer by coalescing submissions from
// concurrent requests. Create with NewBatcher, plug in with
// Detector.SetContentInferencer, and Stop when shutting down.
type Batcher struct {
	window   time.Duration
	maxBatch int // flush early once this many chunks are queued

	// forward runs one coalesced model forward on the group's model.
	// Defaults to m.PredictContentBatch; tests swap it to inject panics.
	forward func(m *adtd.Model, reqs []adtd.ContentRequest, n int) [][][]float64

	mu      sync.Mutex
	pending []*batchCall
	stats   BatcherStats
	stopped bool

	wake chan struct{} // signals the collector that pending changed
	quit chan struct{}
	done chan struct{}
	runs sync.WaitGroup // in-flight run goroutines spawned by flush
}

// NewBatcher creates and starts a micro-batcher. The model comes with each
// submission (the detector passes the request's pinned model), so one
// batcher serves across hot-swaps. window is how long the first submission
// of a batch may wait for company; maxBatch caps the chunks per model
// forward (≤ 1 disables coalescing in all but name). The batcher runs until
// Stop.
func NewBatcher(window time.Duration, maxBatch int) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &Batcher{
		window:   window,
		maxBatch: maxBatch,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	b.forward = func(m *adtd.Model, reqs []adtd.ContentRequest, n int) [][][]float64 {
		return m.PredictContentBatch(reqs, n)
	}
	go b.collect()
	return b
}

// Stop shuts the collector down after flushing anything still queued, then
// waits for every in-flight model forward: once Stop returns no batcher
// goroutine is running. Submissions after Stop run unbatched.
func (b *Batcher) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
	b.runs.Wait()
}

// Stats returns a snapshot of the batching counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// InferContentBatch implements core.ContentInferencer: enqueue, wait for the
// coalesced flush, return this submission's slice of the results. If ctx
// dies while queued or in flight the context error is returned immediately —
// the detector's degradation ladder turns that into a 200-degraded answer,
// never a 500.
func (b *Batcher) InferContentBatch(ctx context.Context, m *adtd.Model, reqs []adtd.ContentRequest, n int) ([][][]float64, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	b.mu.Lock()
	if b.stopped || b.window <= 0 {
		b.mu.Unlock()
		return b.forward(m, reqs, n), nil
	}
	call := &batchCall{ctx: ctx, model: m, reqs: reqs, n: n, enqueued: time.Now(), out: make(chan batchResult, 1)}
	b.pending = append(b.pending, call)
	b.stats.Submissions++
	b.mu.Unlock()
	batcherSubmissionsTotal.Inc()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	select {
	case res := <-call.out:
		return res.probs, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// collect is the single collector goroutine: it watches the queue and
// decides when to flush — window expiry since the oldest submission, the
// chunk cap reached, an imminent submitter deadline, or shutdown.
func (b *Batcher) collect() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		b.mu.Lock()
		var oldest time.Time
		chunks := 0
		var nearest time.Time
		for _, c := range b.pending {
			if oldest.IsZero() || c.enqueued.Before(oldest) {
				oldest = c.enqueued
			}
			chunks += len(c.reqs)
			if dl, ok := c.ctx.Deadline(); ok && (nearest.IsZero() || dl.Before(nearest)) {
				nearest = dl
			}
		}
		empty := len(b.pending) == 0
		b.mu.Unlock()

		if !empty && chunks >= b.maxBatch {
			b.flush()
			continue
		}
		if !empty {
			flushAt := oldest.Add(b.window)
			if !nearest.IsZero() {
				if early := nearest.Add(-batcherDeadlineMargin); early.Before(flushAt) {
					flushAt = early
				}
			}
			wait := time.Until(flushAt)
			if wait <= 0 {
				b.flush()
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
				b.flush()
			case <-b.wake:
			case <-b.quit:
				b.flush()
				return
			}
			continue
		}
		select {
		case <-b.wake:
		case <-b.quit:
			b.flush()
			return
		}
	}
}

// flush takes the whole queue and classifies it. The model forward runs in
// its own goroutine so the collector immediately resumes gathering the next
// batch. Submissions whose context already died are answered with the
// context error instead of joining the forward; submissions with different
// cell budgets n or pinned to different models are grouped into separate
// forwards (they cannot share one — mixing models would answer part of a
// batch with the wrong weights).
func (b *Batcher) flush() {
	b.mu.Lock()
	calls := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(calls) == 0 {
		return
	}

	now := time.Now()
	live := calls[:0]
	dropped := 0
	for _, c := range calls {
		if c.ctx.Err() != nil {
			c.out <- batchResult{err: c.ctx.Err()}
			dropped++
			continue
		}
		live = append(live, c)
	}
	var queued time.Duration
	for _, c := range live {
		d := now.Sub(c.enqueued)
		queued += d
		batcherQueueDelaySeconds.ObserveDuration(d)
	}
	batcherDeadlineDroppedTotal.Add(int64(dropped))
	type groupKey struct {
		model *adtd.Model
		n     int
	}
	groups := make(map[groupKey][]*batchCall)
	for _, c := range live {
		k := groupKey{model: c.model, n: c.n}
		groups[k] = append(groups[k], c)
	}

	b.mu.Lock()
	b.stats.DeadlineDropped += dropped
	b.stats.QueueDelay += queued
	for _, g := range groups {
		b.stats.Batches++
		if len(g) > 1 {
			b.stats.CoalescedBatches++
		}
		chunks := 0
		for _, c := range g {
			chunks += len(c.reqs)
		}
		b.stats.BatchedChunks += chunks
		if chunks > b.stats.MaxBatchChunks {
			b.stats.MaxBatchChunks = chunks
		}
		batcherBatchesTotal.Inc()
		batcherBatchChunks.Observe(float64(chunks))
	}
	b.mu.Unlock()

	for _, g := range groups {
		b.runs.Add(1)
		g := g
		go func() {
			defer b.runs.Done()
			b.run(g)
		}()
	}
}

// run executes one coalesced model forward and demultiplexes the results.
// A panicking forward must not strand its submitters: every call that has
// not yet received its slice is answered with an error, so the detectors
// waiting on them degrade those tables instead of hanging until their
// request deadline.
func (b *Batcher) run(g []*batchCall) {
	answered := 0
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		b.mu.Lock()
		b.stats.Panics++
		b.mu.Unlock()
		batcherPanicsTotal.Inc()
		err := fmt.Errorf("batcher: content inference panicked: %v", r)
		for _, c := range g[answered:] {
			c.out <- batchResult{err: err}
		}
	}()
	all := make([]adtd.ContentRequest, 0, len(g))
	for _, c := range g {
		all = append(all, c.reqs...)
	}
	batch := b.forward(g[0].model, all, g[0].n)
	off := 0
	for _, c := range g {
		c.out <- batchResult{probs: batch[off : off+len(c.reqs)]}
		off += len(c.reqs)
		answered++
	}
}

var _ core.ContentInferencer = (*Batcher)(nil)
