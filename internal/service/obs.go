package service

import (
	"net/http"

	"repro/internal/obs"
)

// Service-level metric handles (DESIGN.md §9): per-request outcomes, the
// scanned-column intrusiveness ratio, and the micro-batcher's activity.
var (
	detectRequestSeconds = obs.Default.LatencyHistogram("taste_detect_request_seconds")
	detectScannedRatio   = obs.Default.Histogram("taste_detect_scanned_ratio", obs.RatioBuckets())
	detectOutcomes       = map[string]*obs.Counter{
		"ok":       obs.Default.Counter("taste_detect_requests_total", "outcome", "ok"),
		"degraded": obs.Default.Counter("taste_detect_requests_total", "outcome", "degraded"),
		"error":    obs.Default.Counter("taste_detect_requests_total", "outcome", "error"),
	}

	modelSwapsTotal      = obs.Default.Counter("taste_model_swaps_total")
	modelSwapErrorsTotal = obs.Default.Counter("taste_model_swap_errors_total")
	servingVersionGauge  = obs.Default.Gauge("taste_model_serving_version")

	batcherQueueDelaySeconds    = obs.Default.LatencyHistogram("taste_batcher_queue_delay_seconds")
	batcherBatchChunks          = obs.Default.Histogram("taste_batcher_batch_chunks", obs.ExpBuckets(1, 2, 8))
	batcherSubmissionsTotal     = obs.Default.Counter("taste_batcher_submissions_total")
	batcherBatchesTotal         = obs.Default.Counter("taste_batcher_batches_total")
	batcherDeadlineDroppedTotal = obs.Default.Counter("taste_batcher_deadline_dropped_total")
	batcherPanicsTotal          = obs.Default.Counter("taste_batcher_panics_total")
)

// syncGauges mirrors externally-owned ledgers (cache occupancy, the
// detector's fault stats) into gauges right before a scrape, so /metrics
// carries them without hooking every cache operation. Hit/miss/eviction
// flows are counters owned by the cache tiers themselves
// (taste_cache_*_total, tier=latent|result); only point-in-time state is
// mirrored here.
func (s *Service) syncGauges() {
	g := obs.Default.Gauge
	for tier, st := range map[string]struct {
		entries int
		bytes   int64
	}{
		"latent": {s.detector.Cache().Len(), s.detector.Cache().Bytes()},
		"result": {s.detector.Results().Len(), s.detector.Results().Bytes()},
	} {
		g("taste_cache_entries", "tier", tier).Set(int64(st.entries))
		g("taste_cache_bytes", "tier", tier).Set(st.bytes)
	}
	g("taste_cache_skipped_copies").Set(s.detector.Cache().Stats().SkippedCopies)
	fs := s.detector.FaultStats()
	g("taste_detector_degraded_columns").Set(int64(fs.DegradedColumns))
	if s.batcher != nil {
		bs := s.batcher.Stats()
		g("taste_batcher_coalesced_batches").Set(int64(bs.CoalescedBatches))
		g("taste_batcher_max_batch_chunks").Set(int64(bs.MaxBatchChunks))
	}
}

// MetricsHandler serves the process-wide metric registry in Prometheus text
// format, refreshing the mirrored gauges on every scrape. Mounted at
// /metrics on the service mux and on `tasted -debug-addr`.
func (s *Service) MetricsHandler() http.Handler {
	return obs.Handler(obs.Default, s.syncGauges)
}

// DebugHandler serves /metrics plus the net/http/pprof endpoints — the mux
// behind `tasted -debug-addr`, kept off the tenant-facing listener.
func (s *Service) DebugHandler() http.Handler {
	return obs.DebugMux(obs.Default, s.syncGauges)
}
