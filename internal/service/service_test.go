package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

var shared struct {
	once sync.Once
	det  *core.Detector
	ds   *corpus.Dataset
	err  error
}

// testService builds a service around a lightly trained detector once per
// test binary.
func testService(t *testing.T) (*Service, *corpus.Dataset) {
	t.Helper()
	shared.once.Do(func() {
		ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(60), 1)
		tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
		types := adtd.NewTypeSpace(ds.Registry.Names())
		m, err := adtd.New(adtd.ReproScale(), tok, types, 3)
		if err != nil {
			shared.err = err
			return
		}
		cfg := adtd.DefaultTrainConfig()
		cfg.Epochs = 2
		if _, err := adtd.FineTune(m, ds.Train, cfg); err != nil {
			shared.err = err
			return
		}
		det, err := core.NewDetector(m, core.DefaultOptions())
		if err != nil {
			shared.err = err
			return
		}
		shared.det, shared.ds = det, ds
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	svc := New(shared.det)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenantdb", shared.ds.Test)
	svc.RegisterTenant("tenantdb", server)
	return svc, shared.ds
}

func doJSON(t *testing.T, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestTypesEndpoint(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/v1/types", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Types      []string `json:"types"`
		Background string   `json:"background"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Types) != ds.Registry.Len() {
		t.Fatalf("types = %d, want %d", len(resp.Types), ds.Registry.Len())
	}
	if resp.Background != corpus.NullType {
		t.Fatalf("background = %q", resp.Background)
	}
	if rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/types", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST should be rejected, got %d", rec.Code)
	}
}

func TestDetectWholeDatabase(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Pipelined: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(resp.Tables), len(ds.Test))
	}
	if resp.TotalColumns == 0 {
		t.Fatal("no columns")
	}
	for _, tb := range resp.Tables {
		for _, c := range tb.Columns {
			if c.Types == nil {
				t.Fatal("types must serialize as [] not null")
			}
			if c.Scanned != (c.Phase == 2) {
				t.Fatal("scanned flag inconsistent with phase")
			}
		}
	}
}

func TestDetectSpecificTables(t *testing.T) {
	svc, ds := testService(t)
	want := ds.Test[0].Name
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{want}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Tables[0].Table != want {
		t.Fatalf("resp tables = %+v", resp.Tables)
	}
}

func TestDetectUnknownDatabase(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "ghost"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestDetectBadBody(t *testing.T) {
	svc, _ := testService(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestDetectUnknownTableReportsError(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{"ghost_table"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) != 1 {
		t.Fatalf("errors = %v", resp.Errors)
	}
}

func TestFeedbackEndpoint(t *testing.T) {
	svc, ds := testService(t)
	table := ds.Test[0]
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/feedback", FeedbackRequest{
		Database: "tenantdb",
		Table:    table.Name,
		Column:   table.Columns[0].Name,
		Labels:   []string{"email"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"applied":true`) {
		t.Fatalf("body %s", rec.Body)
	}
	// Unknown column.
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/v1/feedback", FeedbackRequest{
		Database: "tenantdb", Table: table.Name, Column: "ghost",
	})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc, _ := testService(t)
	// Produce some load first.
	doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb"})
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	snap, ok := resp.Tenants["tenantdb"]
	if !ok {
		t.Fatal("missing tenant stats")
	}
	if snap.Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestDetectWorkerOverrides(t *testing.T) {
	svc, ds := testService(t)
	// A service default plus a request override must both be accepted and
	// still produce a full result set.
	svc.SetDefaultMode(core.ExecMode{Pipelined: true, PrepWorkers: 3, InferWorkers: 3})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Pipelined: true, PrepWorkers: 1, InferWorkers: 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(resp.Tables), len(ds.Test))
	}
}

// TestDetectDeadlineDegradedNot500: deadline_ms=1 cannot possibly finish
// Phase 2, but the endpoint must still answer 200 with a valid, degraded
// response — a deadline is an SLO, not a server error.
func TestDetectDeadlineDegradedNot500(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", DeadlineMillis: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("a 1 ms deadline must degrade the response: %s", rec.Body)
	}
	// Whatever survived the deadline must be well-formed.
	for _, tb := range resp.Tables {
		for _, c := range tb.Columns {
			if c.Types == nil {
				t.Fatal("types must serialize as [] not null")
			}
			if c.Degraded && c.DegradeReason == "" {
				t.Fatal("degraded column without reason")
			}
		}
	}
}

func TestDetectNegativeDeadlineRejected(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", DeadlineMillis: -5})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

// TestDetectFaultyTenant is the acceptance scenario: a tenant database with
// a seeded FaultProfile injecting transient scan errors must still yield a
// typed result for every column of every table — some degraded — with the
// retries visible in the stats ledger.
func TestDetectFaultyTenant(t *testing.T) {
	svc, ds := testService(t)
	flaky := simdb.NewServer(simdb.NoLatency)
	flaky.LoadTables("flakydb", ds.Test)
	flaky.SetFaultProfile(simdb.FaultProfile{Seed: 77, ScanFailProb: 0.6, QueryFailProb: 0.1})
	svc.RegisterTenant("flakydb", flaky)

	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "flakydb"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables)+len(resp.Errors) < len(ds.Test) {
		t.Fatalf("tables %d + errors %d < %d", len(resp.Tables), len(resp.Errors), len(ds.Test))
	}
	typed := 0
	for _, tb := range resp.Tables {
		for _, c := range tb.Columns {
			if c.Types == nil {
				t.Fatalf("column %s.%s: nil types", tb.Table, c.Column)
			}
			typed++
		}
	}
	if typed == 0 {
		t.Fatal("no columns typed")
	}
	if resp.DegradedColumns == 0 && resp.Retries == 0 {
		t.Fatalf("a 0.6 scan-failure rate must cause retries or degradations: %s", rec.Body)
	}

	// The retry/degradation ledgers surface through /v1/stats.
	srec := doJSON(t, svc.Handler(), http.MethodGet, "/v1/stats", nil)
	if srec.Code != http.StatusOK {
		t.Fatalf("stats status %d", srec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	snap, ok := stats.Tenants["flakydb"]
	if !ok {
		t.Fatal("missing flakydb tenant stats")
	}
	if snap.Faults == 0 {
		t.Fatal("tenant ledger recorded no injected faults")
	}
	if snap.Retries != resp.Retries {
		t.Fatalf("tenant ledger retries %d != response retries %d", snap.Retries, resp.Retries)
	}
	if stats.Detector.Retries < resp.Retries {
		t.Fatalf("detector ledger retries %d < response retries %d", stats.Detector.Retries, resp.Retries)
	}
	if resp.DegradedColumns > 0 && stats.Detector.DegradedColumns == 0 {
		t.Fatal("detector ledger missed the degradations")
	}
}

// TestDetectSpecificTablesWithDeadline exercises the per-table path's
// deadline handling: an expired deadline must still produce a 200.
func TestDetectSpecificTablesWithDeadline(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Tables: []string{ds.Test[0].Name}, DeadlineMillis: 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("expired deadline must mark the response degraded: %s", rec.Body)
	}
}

// FuzzHandleDetect feeds arbitrary bodies to /v1/detect: whatever comes in,
// the handler must answer with a well-formed JSON response and never panic.
func FuzzHandleDetect(f *testing.F) {
	seedT := &testing.T{}
	svc, _ := testService(seedT)
	if seedT.Failed() {
		f.Fatal("service setup failed")
	}
	h := svc.Handler()
	f.Add(`{"database":"tenantdb"}`)
	f.Add(`{"database":"tenantdb","deadline_ms":1}`)
	f.Add(`{"database":"tenantdb","tables":["ghost"],"pipelined":true}`)
	f.Add(`{"database":"ghost"}`)
	f.Add(`{not json`)
	f.Add(`{"deadline_ms":-1}`)
	f.Add(``)
	f.Add(`{"database":"tenantdb","deadline_ms":9999999999999}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("invalid JSON response for body %q: %s", body, rec.Body)
		}
	})
}
