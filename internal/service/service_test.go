package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

var shared struct {
	once sync.Once
	det  *core.Detector
	ds   *corpus.Dataset
	err  error
}

// testService builds a service around a lightly trained detector once per
// test binary.
func testService(t *testing.T) (*Service, *corpus.Dataset) {
	t.Helper()
	shared.once.Do(func() {
		ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(60), 1)
		tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
		types := adtd.NewTypeSpace(ds.Registry.Names())
		m, err := adtd.New(adtd.ReproScale(), tok, types, 3)
		if err != nil {
			shared.err = err
			return
		}
		cfg := adtd.DefaultTrainConfig()
		cfg.Epochs = 2
		if _, err := adtd.FineTune(m, ds.Train, cfg); err != nil {
			shared.err = err
			return
		}
		det, err := core.NewDetector(m, core.DefaultOptions())
		if err != nil {
			shared.err = err
			return
		}
		shared.det, shared.ds = det, ds
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	svc := New(shared.det)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenantdb", shared.ds.Test)
	svc.RegisterTenant("tenantdb", server)
	return svc, shared.ds
}

func doJSON(t *testing.T, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestTypesEndpoint(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/v1/types", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Types      []string `json:"types"`
		Background string   `json:"background"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Types) != ds.Registry.Len() {
		t.Fatalf("types = %d, want %d", len(resp.Types), ds.Registry.Len())
	}
	if resp.Background != corpus.NullType {
		t.Fatalf("background = %q", resp.Background)
	}
	if rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/types", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST should be rejected, got %d", rec.Code)
	}
}

func TestDetectWholeDatabase(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Pipelined: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(resp.Tables), len(ds.Test))
	}
	if resp.TotalColumns == 0 {
		t.Fatal("no columns")
	}
	for _, tb := range resp.Tables {
		for _, c := range tb.Columns {
			if c.Types == nil {
				t.Fatal("types must serialize as [] not null")
			}
			if c.Scanned != (c.Phase == 2) {
				t.Fatal("scanned flag inconsistent with phase")
			}
		}
	}
}

func TestDetectSpecificTables(t *testing.T) {
	svc, ds := testService(t)
	want := ds.Test[0].Name
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{want}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Tables[0].Table != want {
		t.Fatalf("resp tables = %+v", resp.Tables)
	}
}

func TestDetectUnknownDatabase(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "ghost"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestDetectBadBody(t *testing.T) {
	svc, _ := testService(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestDetectUnknownTableReportsError(t *testing.T) {
	svc, _ := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{"ghost_table"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) != 1 {
		t.Fatalf("errors = %v", resp.Errors)
	}
}

func TestFeedbackEndpoint(t *testing.T) {
	svc, ds := testService(t)
	table := ds.Test[0]
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/feedback", FeedbackRequest{
		Database: "tenantdb",
		Table:    table.Name,
		Column:   table.Columns[0].Name,
		Labels:   []string{"email"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"applied":true`) {
		t.Fatalf("body %s", rec.Body)
	}
	// Unknown column.
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/v1/feedback", FeedbackRequest{
		Database: "tenantdb", Table: table.Name, Column: "ghost",
	})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc, _ := testService(t)
	// Produce some load first.
	doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb"})
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	snap, ok := resp.Tenants["tenantdb"]
	if !ok {
		t.Fatal("missing tenant stats")
	}
	if snap.Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestDetectWorkerOverrides(t *testing.T) {
	svc, ds := testService(t)
	// A service default plus a request override must both be accepted and
	// still produce a full result set.
	svc.SetDefaultMode(core.ExecMode{Pipelined: true, PrepWorkers: 3, InferWorkers: 3})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Pipelined: true, PrepWorkers: 1, InferWorkers: 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(resp.Tables), len(ds.Test))
	}
}
