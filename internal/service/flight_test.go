package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// TestDetectCoalescesConcurrentIdenticalRequests: identical in-flight
// detects share one execution — one leader runs the pipeline, followers
// wait on its result, and every caller receives an equivalent response.
func TestDetectCoalescesConcurrentIdenticalRequests(t *testing.T) {
	svc, _ := testService(t)
	req := DetectRequest{Database: "tenantdb"}

	const callers = 4
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		resps [callers]*DetectResponse
	)
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, apiErr := svc.Detect(context.Background(), req)
			if apiErr != nil {
				t.Errorf("caller %d: %v", i, apiErr)
				return
			}
			resps[i] = resp
		}(i)
	}
	start.Done()
	done.Wait()

	st := svc.CacheStats().Flight
	if st.Leaders+st.Coalesced != callers {
		t.Fatalf("flight ledger lost callers: %+v", st)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no concurrent identical request was coalesced: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("flights left open: %+v", st)
	}

	// Every caller must see the same answer. Followers share the leader's
	// response verbatim; a second leader (if scheduling serialized some
	// callers) recomputes, which must be byte-identical bar the duration.
	canon := func(r *DetectResponse) string {
		cp := *r
		cp.DurationMillis = 0
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := canon(resps[0])
	for i := 1; i < callers; i++ {
		if got := canon(resps[i]); got != want {
			t.Fatalf("caller %d diverged:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestDetectTraceBypassesFlight: traced requests are never coalesced —
// each caller needs its own span tree.
func TestDetectTraceBypassesFlight(t *testing.T) {
	svc, _ := testService(t)
	req := DetectRequest{Database: "tenantdb", Trace: true}
	if _, apiErr := svc.Detect(context.Background(), req); apiErr != nil {
		t.Fatal(apiErr)
	}
	if st := svc.CacheStats().Flight; st.Leaders != 0 || st.Coalesced != 0 {
		t.Fatalf("trace request entered the flight group: %+v", st)
	}
}
