// Package service exposes the Taste detector as a JSON-over-HTTP cloud
// service, the deployment surface the paper targets (§2.2): tenants
// register their databases with the service and request semantic type
// detection without granting it more access than the two-phase framework
// needs. Built on net/http only.
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /v1/types             the semantic type domain
//	POST /v1/detect            {"database": "...", "tables": ["t1"]?, "pipelined": bool}
//	POST /v1/feedback          {"database", "table", "column", "labels": [...]}
//	GET  /v1/stats             accounting ledger + latent cache statistics
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metafeat"
	"repro/internal/simdb"
)

// Service wires a detector to one or more tenant database servers.
type Service struct {
	detector *core.Detector
	mu       sync.RWMutex
	tenants  map[string]*simdb.Server

	defaultMode core.ExecMode
}

// New creates a service around a detector. Pipelined requests default to
// the paper's 2/2 pool sizes; SetDefaultMode overrides that (e.g. with
// core.AutoMode() when the deployment sizes pools from the machine).
func New(det *core.Detector) *Service {
	return &Service{
		detector:    det,
		tenants:     make(map[string]*simdb.Server),
		defaultMode: core.PipelinedMode(),
	}
}

// SetDefaultMode sets the execution mode used for pipelined detect requests
// that do not carry their own worker counts. Call before serving traffic.
func (s *Service) SetDefaultMode(mode core.ExecMode) { s.defaultMode = mode }

// RegisterTenant attaches a database server under the given database name.
func (s *Service) RegisterTenant(dbName string, server *simdb.Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants[dbName] = server
}

func (s *Service) tenant(dbName string) (*simdb.Server, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	server, ok := s.tenants[dbName]
	return server, ok
}

// Handler returns the HTTP handler for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/types", s.handleTypes)
	mux.HandleFunc("/v1/detect", s.handleDetect)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleTypes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	names := s.detector.Model.Types.Names()
	writeJSON(w, http.StatusOK, map[string]interface{}{"types": names[1:], "background": names[0]})
}

// DetectRequest is the /v1/detect payload. PrepWorkers/InferWorkers, when
// positive, override the service's default pool sizes for this pipelined
// request; they are ignored when Pipelined is false.
type DetectRequest struct {
	Database     string   `json:"database"`
	Tables       []string `json:"tables,omitempty"` // empty = all tables
	Pipelined    bool     `json:"pipelined"`
	PrepWorkers  int      `json:"prep_workers,omitempty"`
	InferWorkers int      `json:"infer_workers,omitempty"`
}

// DetectColumn is one column's outcome in a DetectResponse.
type DetectColumn struct {
	Column  string   `json:"column"`
	Types   []string `json:"types"`
	Phase   int      `json:"phase"`
	Scanned bool     `json:"scanned"`
}

// DetectTable is one table's outcome.
type DetectTable struct {
	Table   string         `json:"table"`
	Columns []DetectColumn `json:"columns"`
}

// DetectResponse is the /v1/detect reply.
type DetectResponse struct {
	Database       string        `json:"database"`
	Tables         []DetectTable `json:"tables"`
	DurationMillis int64         `json:"duration_ms"`
	TotalColumns   int           `json:"total_columns"`
	ScannedColumns int           `json:"scanned_columns"`
	Errors         []string      `json:"errors,omitempty"`
}

func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	server, ok := s.tenant(req.Database)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown database %q", req.Database)
		return
	}

	resp := DetectResponse{Database: req.Database}
	start := time.Now()
	if len(req.Tables) == 0 {
		mode := core.SequentialMode
		if req.Pipelined {
			mode = s.defaultMode
			mode.Pipelined = true
			if req.PrepWorkers > 0 {
				mode.PrepWorkers = req.PrepWorkers
			}
			if req.InferWorkers > 0 {
				mode.InferWorkers = req.InferWorkers
			}
		}
		rep, err := s.detector.DetectDatabase(server, req.Database, mode)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "detection failed: %v", err)
			return
		}
		for _, tr := range rep.Tables {
			resp.Tables = append(resp.Tables, toDetectTable(tr))
		}
		resp.TotalColumns = rep.TotalColumns
		resp.ScannedColumns = rep.ScannedColumns
		for _, e := range rep.Errors {
			resp.Errors = append(resp.Errors, e.Error())
		}
	} else {
		conn, err := server.Connect(req.Database)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "connect: %v", err)
			return
		}
		defer conn.Close()
		for _, table := range req.Tables {
			tr, err := s.detector.DetectTable(conn, req.Database, table)
			if err != nil {
				resp.Errors = append(resp.Errors, err.Error())
				continue
			}
			resp.Tables = append(resp.Tables, toDetectTable(tr))
			resp.TotalColumns += len(tr.Columns)
			resp.ScannedColumns += tr.ScannedColumns
		}
	}
	resp.DurationMillis = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

func toDetectTable(tr *core.TableResult) DetectTable {
	out := DetectTable{Table: tr.Table}
	for _, c := range tr.Columns {
		types := c.Admitted
		if types == nil {
			types = []string{}
		}
		out.Columns = append(out.Columns, DetectColumn{
			Column:  c.Column,
			Types:   types,
			Phase:   c.Phase,
			Scanned: c.Phase == 2,
		})
	}
	return out
}

// FeedbackRequest is the /v1/feedback payload: the tenant corrects a
// column's types; the service adapts online (§8).
type FeedbackRequest struct {
	Database string   `json:"database"`
	Table    string   `json:"table"`
	Column   string   `json:"column"`
	Labels   []string `json:"labels"`
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	server, ok := s.tenant(req.Database)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown database %q", req.Database)
		return
	}
	conn, err := server.Connect(req.Database)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "connect: %v", err)
		return
	}
	defer conn.Close()
	tm, err := conn.TableMetadata(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "table: %v", err)
		return
	}
	info := metafeat.FromTableMeta(tm)
	col := -1
	for i, c := range info.Columns {
		if c.Name == req.Column {
			col = i
			break
		}
	}
	if col < 0 {
		writeError(w, http.StatusNotFound, "unknown column %q", req.Column)
		return
	}
	if err := s.detector.Feedback(info, col, req.Labels); err != nil {
		writeError(w, http.StatusInternalServerError, "feedback: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"applied":   true,
		"feedbacks": len(s.detector.FeedbackLog()),
	})
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Tenants map[string]simdb.AccountingSnapshot `json:"tenants"`
	Cache   struct {
		Hits   int `json:"hits"`
		Misses int `json:"misses"`
		Size   int `json:"size"`
	} `json:"cache"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := StatsResponse{Tenants: map[string]simdb.AccountingSnapshot{}}
	s.mu.RLock()
	for name, server := range s.tenants {
		resp.Tenants[name] = server.Accounting().Snapshot()
	}
	s.mu.RUnlock()
	hits, misses := s.detector.Cache().Stats()
	resp.Cache.Hits = hits
	resp.Cache.Misses = misses
	resp.Cache.Size = s.detector.Cache().Len()
	writeJSON(w, http.StatusOK, resp)
}
