// Package service exposes the Taste detector as a JSON-over-HTTP cloud
// service, the deployment surface the paper targets (§2.2): tenants
// register their databases with the service and request semantic type
// detection without granting it more access than the two-phase framework
// needs. Built on net/http only.
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /v1/types             the semantic type domain
//	POST /v1/detect            {"database": "...", "tables": ["t1"]?, "pipelined": bool,
//	                            "deadline_ms": 0}
//	POST /v1/feedback          {"database", "table", "column", "labels": [...]}
//	GET  /v1/stats             accounting ledger + cache + fault statistics
//	GET  /metrics              Prometheus text exposition of the obs registry
//
// A detect request with deadline_ms > 0 runs under a context deadline that
// propagates into every prep and inference stage. When the deadline (or a
// flaky tenant database) prevents Phase 2, the response still carries typed
// results for every reachable column, with "degraded": true and a
// per-column reason — a deadline is an SLO, not a 500.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adtd"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metafeat"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/simdb"
)

// Service wires a detector to one or more tenant database servers.
type Service struct {
	detector *core.Detector
	mu       sync.RWMutex
	tenants  map[string]*simdb.Server

	defaultMode     core.ExecMode
	defaultDeadline time.Duration
	batcher         *Batcher
	flight          *cache.Group[flightResult]

	// Model registry state (models.go). regMu guards the registry handle
	// and the materialized-version cache; the serving version and swap
	// count are atomics so the stats path never takes the lock.
	regMu          sync.Mutex
	registry       *registry.Registry
	modelName      string
	verCache       map[int]*adtd.Model
	verOrder       []int
	servingVersion atomic.Int64
	swaps          atomic.Int64
}

// New creates a service around a detector. Pipelined requests default to
// the paper's 2/2 pool sizes; SetDefaultMode overrides that (e.g. with
// core.AutoMode() when the deployment sizes pools from the machine).
func New(det *core.Detector) *Service {
	return &Service{
		detector:    det,
		tenants:     make(map[string]*simdb.Server),
		defaultMode: core.PipelinedMode(),
		flight:      cache.NewGroup[flightResult](obs.Default.Counter(cache.MetricCoalesced)),
	}
}

// SetDefaultMode sets the execution mode used for pipelined detect requests
// that do not carry their own worker counts. Call before serving traffic.
func (s *Service) SetDefaultMode(mode core.ExecMode) { s.defaultMode = mode }

// SetDefaultDeadline sets the per-request deadline applied to detect
// requests that do not carry their own deadline_ms (0 disables). Call
// before serving traffic.
func (s *Service) SetDefaultDeadline(d time.Duration) { s.defaultDeadline = d }

// EnableBatching routes the detector's Phase-2 content inference through a
// cross-request micro-batcher: chunks from concurrent /v1/detect requests
// arriving within window of each other share one model forward, up to
// maxBatch chunks per forward. window ≤ 0 disables batching. Call before
// serving traffic; Close stops the batcher.
func (s *Service) EnableBatching(window time.Duration, maxBatch int) {
	if window <= 0 {
		return
	}
	s.batcher = NewBatcher(window, maxBatch)
	s.detector.SetContentInferencer(s.batcher)
}

// Close stops the micro-batcher (if enabled) after flushing queued work.
// Detection keeps working afterwards — inference just runs unbatched.
func (s *Service) Close() {
	if s.batcher != nil {
		s.batcher.Stop()
	}
}

// RegisterTenant attaches a database server under the given database name.
func (s *Service) RegisterTenant(dbName string, server *simdb.Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants[dbName] = server
}

func (s *Service) tenant(dbName string) (*simdb.Server, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	server, ok := s.tenants[dbName]
	return server, ok
}

// Handler returns the HTTP handler for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/types", s.handleTypes)
	mux.HandleFunc("/v1/detect", s.handleDetect)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/models/swap", s.handleModelSwap)
	mux.HandleFunc("/v1/models/publish", s.handleModelPublish)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.Handle("/metrics", s.MetricsHandler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleTypes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	names := s.detector.Model().Types.Names()
	writeJSON(w, http.StatusOK, map[string]interface{}{"types": names[1:], "background": names[0]})
}

// handleDetect is the HTTP front end over the transport-agnostic Detect
// core (detect.go): decode, execute, encode.
func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		detectOutcomes["error"].Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, apiErr := s.Detect(r.Context(), req)
	if apiErr != nil {
		writeError(w, apiErr.Status, "%s", apiErr.Msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// FeedbackRequest is the /v1/feedback payload: the tenant corrects a
// column's types; the service adapts online (§8).
type FeedbackRequest struct {
	Database string   `json:"database"`
	Table    string   `json:"table"`
	Column   string   `json:"column"`
	Labels   []string `json:"labels"`
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	server, ok := s.tenant(req.Database)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown database %q", req.Database)
		return
	}
	ctx := r.Context()
	conn, err := server.Connect(ctx, req.Database)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "connect: %v", err)
		return
	}
	defer conn.Close()
	tm, err := conn.TableMetadata(ctx, req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "table: %v", err)
		return
	}
	info := metafeat.FromTableMeta(tm)
	col := -1
	for i, c := range info.Columns {
		if c.Name == req.Column {
			col = i
			break
		}
	}
	if col < 0 {
		writeError(w, http.StatusNotFound, "unknown column %q", req.Column)
		return
	}
	if err := s.detector.Feedback(info, col, req.Labels); err != nil {
		writeError(w, http.StatusInternalServerError, "feedback: %v", err)
		return
	}
	s.noteServingDrift()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"applied":   true,
		"feedbacks": len(s.detector.FeedbackLog()),
	})
}

// CacheBlock is the /v1/stats view of the tiered detection cache: both
// tier snapshots plus the request-level singleflight counters. Exported so
// the fleet coordinator can scrape and aggregate it per replica.
type CacheBlock struct {
	Latent cache.Stats       `json:"latent"`
	Result cache.Stats       `json:"result"`
	Flight cache.FlightStats `json:"singleflight"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Tenants map[string]simdb.AccountingSnapshot `json:"tenants"`
	Cache   CacheBlock                          `json:"cache"`
	// Model describes the serving model: registry version, weight
	// generation, hot-swap count, and (with a registry attached) the
	// registry's dedup economics.
	Model ModelBlock `json:"model"`
	// Detector is the fault-tolerance ledger: retries spent and columns
	// degraded since the service started.
	Detector struct {
		Retries          int `json:"retries"`
		DegradedColumns  int `json:"degraded_columns"`
		DeadlineDegraded int `json:"deadline_degraded"`
		FailureDegraded  int `json:"failure_degraded"`
	} `json:"detector"`
	// Batcher reports cross-request micro-batching activity; nil when
	// batching is disabled.
	Batcher *BatcherStatsResponse `json:"batcher,omitempty"`
}

// BatcherStatsResponse is the /v1/stats view of BatcherStats.
type BatcherStatsResponse struct {
	Submissions      int   `json:"submissions"`
	Batches          int   `json:"batches"`
	CoalescedBatches int   `json:"coalesced_batches"`
	BatchedChunks    int   `json:"batched_chunks"`
	MaxBatchChunks   int   `json:"max_batch_chunks"`
	QueueDelayMicros int64 `json:"queue_delay_us"`
	DeadlineDropped  int   `json:"deadline_dropped"`
	Panics           int   `json:"panics"`
}

// CacheStats snapshots the tiered cache and singleflight counters — the
// /v1/stats cache block, also consumed by the fleet coordinator's
// per-replica aggregation.
func (s *Service) CacheStats() CacheBlock {
	return CacheBlock{
		Latent: s.detector.Cache().Stats(),
		Result: s.detector.Results().Stats(),
		Flight: s.flight.Stats(),
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := StatsResponse{Tenants: map[string]simdb.AccountingSnapshot{}}
	s.mu.RLock()
	for name, server := range s.tenants {
		resp.Tenants[name] = server.Accounting().Snapshot()
	}
	s.mu.RUnlock()
	resp.Cache = s.CacheStats()
	resp.Model = s.ModelStats()
	fs := s.detector.FaultStats()
	resp.Detector.Retries = fs.Retries
	resp.Detector.DegradedColumns = fs.DegradedColumns
	resp.Detector.DeadlineDegraded = fs.DeadlineDegraded
	resp.Detector.FailureDegraded = fs.FailureDegraded
	if s.batcher != nil {
		bs := s.batcher.Stats()
		resp.Batcher = &BatcherStatsResponse{
			Submissions:      bs.Submissions,
			Batches:          bs.Batches,
			CoalescedBatches: bs.CoalescedBatches,
			BatchedChunks:    bs.BatchedChunks,
			MaxBatchChunks:   bs.MaxBatchChunks,
			QueueDelayMicros: bs.QueueDelay.Microseconds(),
			DeadlineDropped:  bs.DeadlineDropped,
			Panics:           bs.Panics,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
