package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adtd"
	"repro/internal/obs"
	"repro/internal/simdb"
)

// TestConcurrentRetryAttribution is the regression test for the named-tables
// retry accounting: the handler used to diff the detector's *global* fault
// ledger around its loop, so a concurrent request against a flaky tenant
// leaked its retries into a clean tenant's response. Retries are now summed
// from the per-call TableResult counts, so the clean tenant must always
// report zero.
func TestConcurrentRetryAttribution(t *testing.T) {
	svc, ds := testService(t)
	flaky := simdb.NewServer(simdb.NoLatency)
	flaky.LoadTables("flakyconc", ds.Test)
	flaky.SetFaultProfile(simdb.FaultProfile{Seed: 99, ScanFailProb: 0.7, QueryFailProb: 0.2})
	svc.RegisterTenant("flakyconc", flaky)
	h := svc.Handler()

	tables := []string{ds.Test[0].Name, ds.Test[1].Name}
	const rounds = 6
	var wg sync.WaitGroup
	var flakyRetries atomic.Int64
	cleanRetries := make([]int, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "flakyconc", Tables: tables})
			var resp DetectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Error(err)
				return
			}
			flakyRetries.Add(int64(resp.Retries))
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: tables})
			var resp DetectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Error(err)
				return
			}
			cleanRetries[i] = resp.Retries
		}(i)
	}
	wg.Wait()
	for i, r := range cleanRetries {
		if r != 0 {
			t.Fatalf("round %d: clean tenant reported %d retries leaked from the flaky tenant (flaky total %d)",
				i, r, flakyRetries.Load())
		}
	}
}

// TestBatcherPanicAnswersSubmitters: a panicking model forward used to kill
// the run goroutine without writing to any submitter's out channel, stranding
// every request in the batch until its deadline. run now recovers and
// delivers the error to all unanswered calls.
func TestBatcherPanicAnswersSubmitters(t *testing.T) {
	svc, _ := testService(t)
	b := NewBatcher(5*time.Millisecond, 64)
	defer b.Stop()
	b.forward = func(*adtd.Model, []adtd.ContentRequest, int) [][][]float64 {
		panic("injected forward failure")
	}

	const callers = 4
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := b.InferContentBatch(ctx, svc.detector.Model(), []adtd.ContentRequest{{}}, 4)
			errs[i] = err
			if ctx.Err() != nil {
				t.Error("submitter hung until its deadline instead of being answered")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("caller %d: err = %v, want the recovered panic error", i, err)
		}
	}
	if got := b.Stats().Panics; got == 0 {
		t.Fatal("BatcherStats.Panics not incremented")
	}
}

// TestBatcherStopQuiescence: Stop used to return while flush-spawned run
// goroutines could still be executing a model forward. Stop now waits for
// them; the plain (unsynchronized) counter below is safe to read exactly
// because Stop is a barrier — under -race the old behavior fails.
func TestBatcherStopQuiescence(t *testing.T) {
	svc, _ := testService(t)
	b := NewBatcher(50*time.Millisecond, 64)
	forwards := 0 // intentionally unsynchronized; see above
	b.forward = func(_ *adtd.Model, reqs []adtd.ContentRequest, _ int) [][][]float64 {
		time.Sleep(20 * time.Millisecond)
		forwards++
		return make([][][]float64, len(reqs))
	}
	const callers = 3
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.InferContentBatch(context.Background(), svc.detector.Model(), []adtd.ContentRequest{{}}, 4)
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the calls enqueue
	b.Stop()                          // flushes the queue, then must wait for the forwards
	if forwards == 0 {
		t.Fatal("Stop returned before the flushed batch ran")
	}
	wg.Wait()
}

// TestDetectDeadContextStopsTableLoop: after the deadline killed the context,
// the named-tables loop used to keep calling DetectTable once per remaining
// table, appending one identical error each. It now breaks out, reports the
// remaining tables as skipped, and appends a single summary error.
func TestDetectDeadContextStopsTableLoop(t *testing.T) {
	svc, ds := testService(t)
	var tables []string
	for _, tb := range ds.Test {
		tables = append(tables, tb.Name)
	}
	if len(tables) < 3 {
		t.Fatalf("need ≥ 3 test tables, have %d", len(tables))
	}
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Tables: tables, DeadlineMillis: 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("expired deadline must mark the response degraded: %s", rec.Body)
	}
	if len(resp.Errors) >= len(tables) {
		t.Fatalf("dead context produced %d errors for %d tables — the loop did not stop", len(resp.Errors), len(tables))
	}
	for _, tb := range resp.Tables {
		if tb.Skipped {
			if tb.SkipReason == "" {
				t.Fatalf("skipped table %s without a reason", tb.Table)
			}
			if len(tb.Columns) != 0 {
				t.Fatalf("skipped table %s carries columns", tb.Table)
			}
		}
	}
}

// TestDetectTraceReturnsSpanTree: "trace": true must return the request's
// span tree with per-stage children named s<N>:<table>.
func TestDetectTraceReturnsSpanTree(t *testing.T) {
	svc, ds := testService(t)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Tables: []string{ds.Test[0].Name}, Trace: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatalf("no trace in response: %s", rec.Body)
	}
	stages := map[string]bool{}
	resp.Trace.Walk(func(n obs.SpanNode) {
		if i := strings.IndexByte(n.Name, ':'); i > 0 {
			stages[n.Name[:i]] = true
		}
	})
	for _, want := range []string{"s1", "s2", "s3", "s4"} {
		if !stages[want] {
			t.Fatalf("trace misses stage %s: have %v", want, stages)
		}
	}
	// Untraced requests must not pay for or return a trace.
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/v1/detect", DetectRequest{
		Database: "tenantdb", Tables: []string{ds.Test[0].Name},
	})
	var untraced DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &untraced); err != nil {
		t.Fatal(err)
	}
	if untraced.Trace != nil {
		t.Fatal("trace returned without being requested")
	}
}

// metricValue extracts one sample's value from a Prometheus text body.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(series)+1:]), 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// TestMetricsEndpoint drives a burst of mixed ok/degraded/error requests and
// asserts /metrics (a) parses as Prometheus text with consistent histograms,
// (b) carries the core series, and (c) keeps counters monotonic across
// scrapes.
func TestMetricsEndpoint(t *testing.T) {
	svc, ds := testService(t)
	svc.EnableBatching(2*time.Millisecond, 32)
	defer svc.Close()
	h := svc.Handler()

	doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Pipelined: true})
	doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", DeadlineMillis: 1})
	doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "ghost"})
	doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{ds.Test[0].Name}})

	rec := doJSON(t, h, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if err := obs.CheckText(body); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for _, series := range []string{
		`taste_stage_seconds_bucket{stage="s1",le="+Inf"}`,
		`taste_stage_seconds_bucket{stage="s4",le="+Inf"}`,
		`taste_pipeline_queue_wait_seconds_count{kind="prep",stage="s1",stolen="false"}`,
		`taste_pipeline_batch_forwards_total`,
		`taste_detect_requests_total{outcome="ok"}`,
		`taste_detect_requests_total{outcome="degraded"}`,
		`taste_detect_requests_total{outcome="error"}`,
		`taste_detect_request_seconds_count`,
		`taste_detect_scanned_ratio_count`,
		`taste_batcher_submissions_total`,
		`taste_cache_hits`,
		`taste_detector_tables_total`,
		`taste_adtd_forwards_total{kind="meta"}`,
		`taste_simdb_op_seconds_count{op="scan"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics misses %s", series)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if v := metricValue(t, body, `taste_detect_requests_total{outcome="ok"}`); v < 1 {
		t.Fatalf("ok outcomes = %v, want ≥ 1", v)
	}
	if v := metricValue(t, body, `taste_detect_requests_total{outcome="degraded"}`); v < 1 {
		t.Fatalf("degraded outcomes = %v, want ≥ 1", v)
	}
	if v := metricValue(t, body, `taste_detect_requests_total{outcome="error"}`); v < 1 {
		t.Fatalf("error outcomes = %v, want ≥ 1", v)
	}

	// Counter monotonicity across scrapes with traffic in between.
	before := metricValue(t, body, `taste_detect_requests_total{outcome="ok"}`)
	doJSON(t, h, http.MethodPost, "/v1/detect", DetectRequest{Database: "tenantdb", Tables: []string{ds.Test[0].Name}})
	rec = doJSON(t, h, http.MethodGet, "/metrics", nil)
	if err := obs.CheckText(rec.Body.String()); err != nil {
		t.Fatalf("second scrape does not parse: %v", err)
	}
	after := metricValue(t, rec.Body.String(), `taste_detect_requests_total{outcome="ok"}`)
	if after < before+1 {
		t.Fatalf("ok counter not monotonic: %v then %v", before, after)
	}
}
