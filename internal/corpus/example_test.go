package corpus_test

import (
	"fmt"

	"repro/internal/corpus"
)

func ExampleGenerate() {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(50), 1)
	stats := ds.Stats()[0]
	fmt.Printf("tables=%d splits=%d/%d/%d type-less=%.0f%%\n",
		stats.Tables, len(ds.Train), len(ds.Val), len(ds.Test), stats.PctNoType)
	// Output: tables=50 splits=40/5/5 type-less=0%
}

func ExampleRegistry_Subset() {
	reg := corpus.DefaultRegistry().Subset([]string{"email", "city"})
	fmt.Println(reg.Names())
	// Output: [city email]
}
