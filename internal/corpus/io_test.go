package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(20), 1)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ds.Test); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Test) {
		t.Fatalf("read %d tables, want %d", len(got), len(ds.Test))
	}
	for i, tb := range got {
		src := ds.Test[i]
		if tb.Name != src.Name || tb.Comment != src.Comment {
			t.Fatalf("table %d metadata mismatch", i)
		}
		for j, c := range tb.Columns {
			sc := src.Columns[j]
			if c.Name != sc.Name || !reflect.DeepEqual(c.Labels, sc.Labels) || !reflect.DeepEqual(c.Values, sc.Values) {
				t.Fatalf("column %d.%d mismatch", i, j)
			}
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReadJSONLValidates(t *testing.T) {
	cases := []string{
		`{"Name":"","Columns":[]}`,                                                             // missing name
		`{"Name":"t","Columns":[{"Name":""}]}`,                                                 // unnamed column
		`{"Name":"t","Columns":[{"Name":"a"},{"Name":"a"}]}`,                                   // duplicate
		`{"Name":"t","Columns":[{"Name":"a","Values":["x"]},{"Name":"b","Values":["x","y"]}]}`, // ragged
	}
	for i, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %d tables", err, len(got))
	}
}

func TestDatasetSaveLoad(t *testing.T) {
	dir := t.TempDir()
	ds := Generate(DefaultRegistry(), GitTablesProfile(30), 2)
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != ds.Name {
		t.Fatalf("name %q, want %q", loaded.Name, ds.Name)
	}
	if len(loaded.Train) != len(ds.Train) || len(loaded.Val) != len(ds.Val) || len(loaded.Test) != len(ds.Test) {
		t.Fatal("split sizes differ")
	}
	if loaded.Registry.Len() != ds.Registry.Len() {
		t.Fatalf("registry %d types, want %d", loaded.Registry.Len(), ds.Registry.Len())
	}
	if loaded.Stats() != ds.Stats() {
		t.Fatal("statistics differ after round trip")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir()+"/nope", DefaultRegistry()); err == nil {
		t.Fatal("expected error")
	}
}
