package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Table serialization: one JSON object per line (JSONL), the same layout
// GitTables-style corpora commonly ship in. Exporting lets external tooling
// inspect generated corpora; importing lets the detector run over corpora
// produced elsewhere (e.g. anonymized production schemas).

// WriteJSONL writes tables to w, one JSON document per line.
func WriteJSONL(w io.Writer, tables []*Table) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, t := range tables {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("corpus: encode table %d (%s): %w", i, t.Name, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads tables produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*Table, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []*Table
	for {
		var t Table
		if err := dec.Decode(&t); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("corpus: decode table %d: %w", len(out), err)
		}
		if err := validateTable(&t); err != nil {
			return nil, fmt.Errorf("corpus: table %d: %w", len(out), err)
		}
		out = append(out, &t)
	}
	return out, nil
}

// validateTable rejects structurally broken imports early.
func validateTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("missing table name")
	}
	rows := -1
	seen := make(map[string]bool, len(t.Columns))
	for i, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("column %d of %s has no name", i, t.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("duplicate column %s.%s", t.Name, c.Name)
		}
		seen[c.Name] = true
		if rows == -1 {
			rows = len(c.Values)
		} else if len(c.Values) != rows {
			return fmt.Errorf("column %s.%s has %d rows, expected %d", t.Name, c.Name, len(c.Values), rows)
		}
	}
	return nil
}

// Save writes the dataset's three splits as JSONL files plus a manifest to
// dir, creating it if needed.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	manifest := struct {
		Name  string   `json:"name"`
		Types []string `json:"types"`
	}{Name: d.Name, Types: d.Registry.Names()}
	mb, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	for _, split := range []struct {
		name   string
		tables []*Table
	}{{"train", d.Train}, {"val", d.Val}, {"test", d.Test}} {
		f, err := os.Create(filepath.Join(dir, split.name+".jsonl"))
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if err := WriteJSONL(f, split.tables); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	return nil
}

// Load reads a dataset saved by Save. The registry is reconstructed as the
// subset of reg covering the manifest's type names; labels referencing
// types absent from reg are preserved in the tables but will not be part of
// the returned registry.
func Load(dir string, reg *Registry) (*Dataset, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var manifest struct {
		Name  string   `json:"name"`
		Types []string `json:"types"`
	}
	if err := json.Unmarshal(mb, &manifest); err != nil {
		return nil, fmt.Errorf("corpus: manifest: %w", err)
	}
	ds := &Dataset{Name: manifest.Name, Registry: reg.Subset(manifest.Types)}
	for _, split := range []struct {
		name string
		dst  *[]*Table
	}{{"train", &ds.Train}, {"val", &ds.Val}, {"test", &ds.Test}} {
		f, err := os.Open(filepath.Join(dir, split.name+".jsonl"))
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		tables, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("corpus: %s split: %w", split.name, err)
		}
		*split.dst = tables
	}
	return ds, nil
}
