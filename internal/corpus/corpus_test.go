package corpus

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultRegistryWellFormed(t *testing.T) {
	reg := DefaultRegistry()
	if reg.Len() < 50 {
		t.Fatalf("registry has %d types, want ≥50", reg.Len())
	}
	rng := rand.New(rand.NewSource(1))
	for _, typ := range reg.Types() {
		if typ.Name == "" || typ.Category == "" || typ.SQLType == "" {
			t.Fatalf("type %+v missing fields", typ)
		}
		if len(typ.ColumnNames) == 0 {
			t.Fatalf("type %s has no column names", typ.Name)
		}
		for i := 0; i < 5; i++ {
			if v := typ.Gen(rng); v == "" {
				t.Fatalf("type %s generated empty value", typ.Name)
			}
		}
		for _, co := range typ.CoTypes {
			if reg.Lookup(co) == nil {
				t.Fatalf("type %s references unknown co-type %s", typ.Name, co)
			}
		}
	}
}

func TestRegistryLookupAndNames(t *testing.T) {
	reg := DefaultRegistry()
	if reg.Lookup("email") == nil {
		t.Fatal("email type missing")
	}
	if reg.Lookup("no_such_type") != nil {
		t.Fatal("lookup of unknown type should be nil")
	}
	names := reg.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names must be sorted and unique")
		}
	}
}

func TestRegistryRegisterUserDefined(t *testing.T) {
	reg := DefaultRegistry()
	before := reg.Len()
	err := reg.Register(&Type{
		Name:        "employee_badge",
		Category:    "identifier",
		SQLType:     "VARCHAR",
		ColumnNames: []string{"badge", "badge_id"},
		Gen:         pattern("B-#####"),
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if reg.Len() != before+1 || reg.Lookup("employee_badge") == nil {
		t.Fatal("registration did not take effect")
	}
	// Duplicate and invalid registrations must fail.
	if err := reg.Register(&Type{Name: "employee_badge", ColumnNames: []string{"x"}, Gen: pattern("#")}); err == nil {
		t.Fatal("duplicate registration should error")
	}
	if err := reg.Register(&Type{Name: "incomplete"}); err == nil {
		t.Fatal("invalid registration should error")
	}
}

func TestRegistrySubset(t *testing.T) {
	reg := DefaultRegistry()
	sub := reg.Subset([]string{"email", "city", "unknown_type"})
	if sub.Len() != 2 {
		t.Fatalf("subset has %d types, want 2", sub.Len())
	}
	if sub.Lookup("email") == nil || sub.Lookup("city") == nil {
		t.Fatal("subset missing requested types")
	}
}

func TestAmbiguousNamesCoverCategories(t *testing.T) {
	reg := DefaultRegistry()
	for _, typ := range reg.Types() {
		pool := AmbiguousNames[typ.Category]
		if len(pool) == 0 {
			t.Fatalf("category %s (type %s) has no ambiguous name pool", typ.Category, typ.Name)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	reg := DefaultRegistry()
	p := WikiTableProfile(5)
	a := NewGenerator(reg, p, 7)
	b := NewGenerator(reg, p, 7)
	for i := 0; i < 5; i++ {
		ta, tb := a.Table(), b.Table()
		if ta.Name != tb.Name || len(ta.Columns) != len(tb.Columns) {
			t.Fatal("same seed must generate identical tables")
		}
		for j := range ta.Columns {
			if ta.Columns[j].Name != tb.Columns[j].Name || ta.Columns[j].Values[0] != tb.Columns[j].Values[0] {
				t.Fatal("column mismatch under same seed")
			}
		}
	}
}

func TestGeneratorUniqueColumnNames(t *testing.T) {
	reg := DefaultRegistry()
	g := NewGenerator(reg, GitTablesProfile(30), 3)
	for i := 0; i < 30; i++ {
		tbl := g.Table()
		seen := make(map[string]bool)
		for _, c := range tbl.Columns {
			if seen[c.Name] {
				t.Fatalf("duplicate column name %q in table %s", c.Name, tbl.Name)
			}
			seen[c.Name] = true
		}
	}
}

func TestWikiTableProfileProperties(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(300), 1)
	stats := ds.Stats()
	all := stats[0]
	if all.PctNoType != 0 {
		t.Fatalf("WikiTable profile must have 0%% type-less columns, got %.2f%%", all.PctNoType)
	}
	ambiguous, labelled := 0, 0
	for _, tb := range append(append(ds.Train, ds.Val...), ds.Test...) {
		for _, c := range tb.Columns {
			if c.HasType() {
				labelled++
				if c.Ambiguous {
					ambiguous++
				}
			}
		}
	}
	rate := float64(ambiguous) / float64(labelled)
	if math.Abs(rate-0.45) > 0.06 {
		t.Fatalf("ambiguous rate %.3f, want ≈0.45", rate)
	}
}

func TestGitTablesProfileProperties(t *testing.T) {
	ds := Generate(DefaultRegistry(), GitTablesProfile(300), 2)
	all := ds.Stats()[0]
	if all.PctNoType < 27 || all.PctNoType > 37 {
		t.Fatalf("GitTables type-less ratio %.2f%%, want ≈32%%", all.PctNoType)
	}
}

func TestSplitProportions(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(100), 3)
	if len(ds.Train) != 80 || len(ds.Val) != 10 || len(ds.Test) != 10 {
		t.Fatalf("split sizes %d/%d/%d", len(ds.Train), len(ds.Val), len(ds.Test))
	}
}

func TestAmbiguousColumnsHaveNoComments(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(100), 4)
	for _, tb := range ds.Train {
		for _, c := range tb.Columns {
			if c.Ambiguous && c.Comment != "" {
				t.Fatalf("ambiguous column %s has comment %q", c.Name, c.Comment)
			}
		}
	}
}

func TestAmbiguousColumnNamesAreFromPools(t *testing.T) {
	pool := make(map[string]bool)
	for _, names := range AmbiguousNames {
		for _, n := range names {
			pool[n] = true
		}
	}
	for _, n := range globalAmbiguousNames {
		pool[n] = true
	}
	ds := Generate(DefaultRegistry(), WikiTableProfile(80), 5)
	for _, tb := range ds.Train {
		for _, c := range tb.Columns {
			if !c.Ambiguous {
				continue
			}
			ok := pool[c.Name]
			if !ok {
				// Collision suffixes append digits: "num" → "num2".
				for p := range pool {
					if strings.HasPrefix(c.Name, p) && strings.TrimLeft(c.Name[len(p):], "0123456789") == "" {
						ok = true
						break
					}
				}
			}
			if !ok {
				t.Fatalf("ambiguous column name %q not from ambiguity pools", c.Name)
			}
		}
	}
}

func TestNullColumnsHaveNoLabels(t *testing.T) {
	ds := Generate(DefaultRegistry(), GitTablesProfile(100), 6)
	foundNull := false
	for _, tb := range ds.Train {
		for _, c := range tb.Columns {
			if !c.HasType() {
				foundNull = true
				if c.Ambiguous {
					t.Fatal("null columns are not 'ambiguous'")
				}
			}
		}
	}
	if !foundNull {
		t.Fatal("GitTables profile should produce null columns")
	}
}

func TestTuneRelabels(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(100), 7)
	retained := ds.SampleTypes(10, 0)
	tuned := ds.Tune(retained)
	if tuned.Registry.Len() != 10 {
		t.Fatalf("tuned registry has %d types", tuned.Registry.Len())
	}
	keep := make(map[string]bool)
	for _, n := range retained {
		keep[n] = true
	}
	for _, tb := range tuned.Test {
		for _, c := range tb.Columns {
			for _, l := range c.Labels {
				if !keep[l] {
					t.Fatalf("tuned column kept dropped label %s", l)
				}
			}
		}
	}
	// Tuning must increase the type-less ratio.
	if tuned.Stats()[0].PctNoType <= ds.Stats()[0].PctNoType {
		t.Fatal("tuning should create columns without types")
	}
	// Original dataset must be untouched.
	if ds.Stats()[0].PctNoType != 0 {
		t.Fatal("Tune must not mutate the source dataset")
	}
}

func TestTuneMonotoneNullRatio(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(150), 8)
	prev := -1.0
	for _, k := range []int{50, 30, 10} {
		tuned := ds.Tune(ds.SampleTypes(k, 0))
		pct := tuned.Stats()[0].PctNoType
		if pct < prev {
			t.Fatalf("null ratio should not decrease as k shrinks: k=%d pct=%.2f prev=%.2f", k, pct, prev)
		}
		prev = pct
	}
}

func TestSampleTypesDeterministic(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(20), 9)
	a := ds.SampleTypes(5, 0)
	b := ds.SampleTypes(5, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleTypes must be deterministic for a fixed seed")
		}
	}
	c := ds.SampleTypes(5, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Log("warning: different seeds produced identical samples (possible but unlikely)")
	}
}

func TestStatsOfCountsMultiLabel(t *testing.T) {
	tb := &Table{Columns: []*Column{
		{Labels: []string{"a", "b"}, Values: []string{"x"}},
		{Labels: []string{"a"}, Values: []string{"x"}},
		{Labels: nil, Values: []string{"x"}},
	}}
	s := StatsOf([]*Table{tb})
	if s.Columns != 3 || s.Types != 2 || s.MultiLabeled != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.PctNoType-100.0/3) > 1e-9 {
		t.Fatalf("PctNoType = %v", s.PctNoType)
	}
}

func TestTableRows(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(10), 10)
	for _, tb := range ds.Train {
		if tb.Rows() != 60 {
			t.Fatalf("table %s has %d rows, want 60", tb.Name, tb.Rows())
		}
	}
	empty := &Table{}
	if empty.Rows() != 0 {
		t.Fatal("empty table should report 0 rows")
	}
}

func TestNullCellRateApplied(t *testing.T) {
	ds := Generate(DefaultRegistry(), WikiTableProfile(50), 11)
	total, empty := 0, 0
	for _, tb := range ds.Train {
		for _, c := range tb.Columns {
			for _, v := range c.Values {
				total++
				if v == "" {
					empty++
				}
			}
		}
	}
	rate := float64(empty) / float64(total)
	if rate < 0.02 || rate > 0.1 {
		t.Fatalf("null cell rate %.3f, want ≈0.05", rate)
	}
}

// Property: every generated value for a type with an all-digit pattern stays
// parseable in shape (length preserved), for arbitrary seeds.
func TestPatternGeneratorProperty(t *testing.T) {
	gen := pattern("###-##-####")
	f := func(seed int64) bool {
		v := gen(rand.New(rand.NewSource(seed)))
		if len(v) != 11 || v[3] != '-' || v[6] != '-' {
			return false
		}
		for i, ch := range v {
			if i == 3 || i == 6 {
				continue
			}
			if ch < '0' || ch > '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dataset generation is pure — same (profile, seed) twice gives
// identical statistics.
func TestGenerateDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := Generate(DefaultRegistry(), GitTablesProfile(20), seed)
		b := Generate(DefaultRegistry(), GitTablesProfile(20), seed)
		return a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
