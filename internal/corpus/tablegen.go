package corpus

import (
	"fmt"
	"math/rand"
	"sort"
)

// Column is one generated user-table column with its ground-truth labels.
type Column struct {
	Name    string
	Comment string
	SQLType string
	// Labels holds the ground-truth semantic types. Empty means the column
	// has no semantic type (the background NullType).
	Labels []string
	// Values holds the generated cell contents (one per row; "" = NULL).
	Values []string
	// Ambiguous records whether the generator deliberately hid the type
	// from metadata (uninformative name, no comment). Diagnostic only; the
	// detection models never see it.
	Ambiguous bool
}

// HasType reports whether the column carries any semantic type label.
func (c *Column) HasType() bool { return len(c.Labels) > 0 }

// Table is one generated user table.
type Table struct {
	Name    string
	Comment string
	Columns []*Column
}

// Rows returns the number of rows (all columns share the row count).
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return len(t.Columns[0].Values)
}

// Profile controls the statistical shape of a generated corpus. The two
// built-in profiles mirror the properties of WikiTable and GitTables that
// the paper's evaluation depends on (see DESIGN.md §1).
type Profile struct {
	// Name identifies the profile ("wikitable", "gittables").
	Name string
	// Tables is the number of tables to generate.
	Tables int
	// MinCols and MaxCols bound the per-table column count.
	MinCols, MaxCols int
	// Rows is the number of rows per table.
	Rows int
	// AmbiguousRate is the probability that a labelled column receives an
	// uninformative name and no comment, hiding its type from metadata.
	AmbiguousRate float64
	// CommentRate is the probability that a non-ambiguous column carries a
	// descriptive comment.
	CommentRate float64
	// NullRate is the probability that a column has no semantic type.
	NullRate float64
	// MultiLabelRate is the probability that a column with co-typed
	// primary type receives an additional label.
	MultiLabelRate float64
	// NullCellRate is the probability an individual cell is NULL (empty).
	NullCellRate float64
	// TableCommentRate is the probability a table carries a comment
	// (WikiTable page/section titles become table comments, §6.1.3).
	TableCommentRate float64
}

// WikiTableProfile mimics the WikiTable dataset: every column labelled,
// moderately ambiguous metadata so that roughly 45 % of columns need P2.
func WikiTableProfile(tables int) Profile {
	return Profile{
		Name:             "wikitable",
		Tables:           tables,
		MinCols:          2,
		MaxCols:          6,
		Rows:             60,
		AmbiguousRate:    0.45,
		CommentRate:      0.5,
		NullRate:         0,
		MultiLabelRate:   0.15,
		NullCellRate:     0.05,
		TableCommentRate: 0.8,
	}
}

// GitTablesProfile mimics GitTables-100K: CSV-style highly informative
// headers (low ambiguity) and ≈32 % columns without any semantic type.
func GitTablesProfile(tables int) Profile {
	return Profile{
		Name:             "gittables",
		Tables:           tables,
		MinCols:          3,
		MaxCols:          20,
		Rows:             60,
		AmbiguousRate:    0.02,
		CommentRate:      0.2,
		NullRate:         0.32,
		MultiLabelRate:   0.05,
		NullCellRate:     0.08,
		TableCommentRate: 0.3,
	}
}

// SmallTablesProfile mimics the Sherlock/Sato-scale corpora dominated by
// many narrow tables (see PAPERS.md): exactly 3 columns per table, with
// WikiTable-like ambiguity so a steady fraction of columns reaches Phase 2.
// This is the workload shape where per-table dispatch overhead and
// unbatched Phase-2 forwards dominate — the case cross-table inference
// batching (DESIGN.md §16) exists for.
func SmallTablesProfile(tables int) Profile {
	return Profile{
		Name:             "smalltables",
		Tables:           tables,
		MinCols:          3,
		MaxCols:          3,
		Rows:             60,
		AmbiguousRate:    0.45,
		CommentRate:      0.5,
		NullRate:         0,
		MultiLabelRate:   0.15,
		NullCellRate:     0.05,
		TableCommentRate: 0.8,
	}
}

var tableNameNouns = []string{"records", "entries", "items", "listing", "catalog", "log", "registry", "archive", "snapshot", "export"}
var tableThemes = []string{"customer", "order", "event", "track", "player", "city", "product", "session", "asset", "employee", "shipment", "survey", "device", "account", "library"}

// Generator produces tables for a profile over a type registry.
type Generator struct {
	Registry *Registry
	Profile  Profile
	rng      *rand.Rand
	serial   int
}

// NewGenerator creates a deterministic generator for the given seed.
func NewGenerator(reg *Registry, p Profile, seed int64) *Generator {
	validateProfile(p)
	return &Generator{Registry: reg, Profile: p, rng: rand.New(rand.NewSource(seed))}
}

func validateProfile(p Profile) {
	if p.Tables < 0 || p.MinCols < 1 || p.MaxCols < p.MinCols || p.Rows < 1 {
		panic(fmt.Sprintf("corpus: invalid profile %+v", p))
	}
}

// Table generates the next table.
func (g *Generator) Table() *Table {
	g.serial++
	rng := g.rng
	p := g.Profile
	theme := tableThemes[rng.Intn(len(tableThemes))]
	t := &Table{
		Name: fmt.Sprintf("%s_%s_%d", theme, tableNameNouns[rng.Intn(len(tableNameNouns))], g.serial),
	}
	if rng.Float64() < p.TableCommentRate {
		t.Comment = fmt.Sprintf("list of %s %s", theme, tableNameNouns[rng.Intn(len(tableNameNouns))])
	}
	ncols := p.MinCols + rng.Intn(p.MaxCols-p.MinCols+1)
	used := make(map[string]bool)
	for i := 0; i < ncols; i++ {
		c := g.column(rng, used)
		t.Columns = append(t.Columns, c)
	}
	return t
}

// column generates one column, choosing a type (or the background null
// type), its metadata, and its values.
func (g *Generator) column(rng *rand.Rand, usedNames map[string]bool) *Column {
	p := g.Profile
	if rng.Float64() < p.NullRate {
		return g.nullColumn(rng, usedNames)
	}
	types := g.Registry.Types()
	typ := types[rng.Intn(len(types))]
	c := &Column{SQLType: typ.SQLType, Labels: []string{typ.Name}}
	if len(typ.CoTypes) > 0 && rng.Float64() < p.MultiLabelRate {
		c.Labels = append(c.Labels, typ.CoTypes[rng.Intn(len(typ.CoTypes))])
	}
	sort.Strings(c.Labels)

	if rng.Float64() < p.AmbiguousRate {
		c.Ambiguous = true
		c.Name = uniqueName(rng, usedNames, g.ambiguousPool(typ.Category))
		// No comment: an explanatory comment would defeat the ambiguity.
	} else {
		c.Name = uniqueName(rng, usedNames, typ.ColumnNames)
		if len(typ.Comments) > 0 && rng.Float64() < p.CommentRate {
			c.Comment = typ.Comments[rng.Intn(len(typ.Comments))]
		}
	}
	c.Values = g.values(rng, typ.Gen)
	return c
}

func (g *Generator) nullColumn(rng *rand.Rand, usedNames map[string]bool) *Column {
	c := &Column{
		SQLType: "VARCHAR",
		Name:    uniqueName(rng, usedNames, NullColumnNames),
	}
	c.Values = g.values(rng, nullValueGen)
	return c
}

func (g *Generator) values(rng *rand.Rand, gen func(*rand.Rand) string) []string {
	vals := make([]string, g.Profile.Rows)
	for i := range vals {
		if rng.Float64() < g.Profile.NullCellRate {
			continue // empty string models SQL NULL
		}
		vals[i] = gen(rng)
	}
	return vals
}

// ambiguousPool merges the category pool with the global pool.
func (g *Generator) ambiguousPool(category string) []string {
	pool := append([]string(nil), AmbiguousNames[category]...)
	return append(pool, globalAmbiguousNames...)
}

// uniqueName draws from pool, suffixing with an index when the bare name is
// taken within the table (mirrors "num", "num2" in real schemas).
func uniqueName(rng *rand.Rand, used map[string]bool, pool []string) string {
	base := pool[rng.Intn(len(pool))]
	name := base
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	used[name] = true
	return name
}

// Dataset is a generated corpus with train/validation/test splits.
type Dataset struct {
	Name     string
	Registry *Registry
	Profile  Profile
	Train    []*Table
	Val      []*Table
	Test     []*Table
}

// Generate builds a full dataset for the profile, splitting 80/10/10.
func Generate(reg *Registry, p Profile, seed int64) *Dataset {
	g := NewGenerator(reg, p, seed)
	all := make([]*Table, p.Tables)
	for i := range all {
		all[i] = g.Table()
	}
	nTrain := p.Tables * 8 / 10
	nVal := p.Tables / 10
	return &Dataset{
		Name:     p.Name,
		Registry: reg,
		Profile:  p,
		Train:    all[:nTrain],
		Val:      all[nTrain : nTrain+nVal],
		Test:     all[nTrain+nVal:],
	}
}

// SplitStats summarizes one split for the Table 2 reproduction.
type SplitStats struct {
	Tables       int
	Columns      int
	Types        int
	PctNoType    float64 // percentage of columns without any semantic type
	MultiLabeled int
}

// StatsOf computes summary statistics over a set of tables.
func StatsOf(tables []*Table) SplitStats {
	s := SplitStats{Tables: len(tables)}
	types := make(map[string]bool)
	noType := 0
	for _, t := range tables {
		for _, c := range t.Columns {
			s.Columns++
			if !c.HasType() {
				noType++
				continue
			}
			if len(c.Labels) > 1 {
				s.MultiLabeled++
			}
			for _, l := range c.Labels {
				types[l] = true
			}
		}
	}
	s.Types = len(types)
	if s.Columns > 0 {
		s.PctNoType = 100 * float64(noType) / float64(s.Columns)
	}
	return s
}

// Stats returns statistics for the whole dataset and each split, in the
// order: all, train, val, test.
func (d *Dataset) Stats() [4]SplitStats {
	all := append(append(append([]*Table(nil), d.Train...), d.Val...), d.Test...)
	return [4]SplitStats{StatsOf(all), StatsOf(d.Train), StatsOf(d.Val), StatsOf(d.Test)}
}

// Tune produces the WikiTable-Sk dataset of §6.6: it keeps only the
// semantic types in retained, strips all other labels, and assigns the
// background type to columns left with no labels. Columns' values and
// metadata are shared with the original dataset (labels are rewritten on
// copies), and the registry is subset accordingly.
func (d *Dataset) Tune(retained []string) *Dataset {
	keep := make(map[string]bool, len(retained))
	for _, n := range retained {
		keep[n] = true
	}
	tuneTables := func(ts []*Table) []*Table {
		out := make([]*Table, len(ts))
		for i, t := range ts {
			nt := &Table{Name: t.Name, Comment: t.Comment}
			for _, c := range t.Columns {
				nc := &Column{
					Name: c.Name, Comment: c.Comment, SQLType: c.SQLType,
					Values: c.Values, Ambiguous: c.Ambiguous,
				}
				for _, l := range c.Labels {
					if keep[l] {
						nc.Labels = append(nc.Labels, l)
					}
				}
				nt.Columns = append(nt.Columns, nc)
			}
			out[i] = nt
		}
		return out
	}
	return &Dataset{
		Name:     fmt.Sprintf("%s-S%d", d.Name, len(retained)),
		Registry: d.Registry.Subset(retained),
		Profile:  d.Profile,
		Train:    tuneTables(d.Train),
		Val:      tuneTables(d.Val),
		Test:     tuneTables(d.Test),
	}
}

// SampleTypes deterministically selects k type names from the registry
// (random seed as in §6.6, "random seed 0").
func (d *Dataset) SampleTypes(k int, seed int64) []string {
	names := d.Registry.Names()
	if k >= len(names) {
		return names
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	out := names[:k]
	sort.Strings(out)
	return out
}
