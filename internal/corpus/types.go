// Package corpus generates the synthetic table corpora that stand in for the
// WikiTable and GitTables datasets of the paper's evaluation (see DESIGN.md
// §1 for the substitution rationale). It provides a semantic-type registry
// with per-type value generators, table generators with controllable
// metadata informativeness, dataset splits, and the WikiTable-Sk
// retained-type tuning used in §6.6.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// NullType is the background label assigned to columns without any semantic
// type ("type: null" in §6.1.1).
const NullType = "type:null"

// Type describes one semantic type: how its values look and what metadata
// (names, comments) tenants plausibly attach to columns of that type.
type Type struct {
	// Name is the canonical type identifier, e.g. "phone_number".
	Name string
	// Category groups related types; ambiguous column names are shared
	// within a category (e.g. "num" within "numeric_id").
	Category string
	// ColumnNames are informative column names for this type.
	ColumnNames []string
	// Comments are comment templates occasionally attached to the column.
	Comments []string
	// SQLType is the declared data type in the user database.
	SQLType string
	// Gen produces one cell value.
	Gen func(rng *rand.Rand) string
	// CoTypes lists types that may co-occur as additional labels on the
	// same column (multi-label, §2.2), with a small probability.
	CoTypes []string
}

// Registry holds the semantic type domain set S.
type Registry struct {
	types  []*Type
	byName map[string]*Type
}

// NewRegistry builds a registry over the given types, which must have unique
// names.
func NewRegistry(types []*Type) *Registry {
	r := &Registry{byName: make(map[string]*Type, len(types))}
	for _, t := range types {
		if _, dup := r.byName[t.Name]; dup {
			panic("corpus: duplicate type " + t.Name)
		}
		r.types = append(r.types, t)
		r.byName[t.Name] = t
	}
	return r
}

// Register adds a user-defined semantic type (the §8 extension). It returns
// an error instead of panicking so applications can validate tenant input.
func (r *Registry) Register(t *Type) error {
	if t.Name == "" || t.Gen == nil || len(t.ColumnNames) == 0 {
		return fmt.Errorf("corpus: type needs a name, generator, and at least one column name")
	}
	if _, dup := r.byName[t.Name]; dup {
		return fmt.Errorf("corpus: type %q already registered", t.Name)
	}
	r.types = append(r.types, t)
	r.byName[t.Name] = t
	return nil
}

// Types returns all registered types in registration order.
func (r *Registry) Types() []*Type { return r.types }

// Names returns all type names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.types))
	for i, t := range r.types {
		out[i] = t.Name
	}
	sort.Strings(out)
	return out
}

// Lookup returns the type with the given name, or nil.
func (r *Registry) Lookup(name string) *Type { return r.byName[name] }

// Len returns the number of registered types.
func (r *Registry) Len() int { return len(r.types) }

// Subset returns a new registry containing only the named types; unknown
// names are ignored. Used to build the retained type sets Sk of §6.6.
func (r *Registry) Subset(names []string) *Registry {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	var ts []*Type
	for _, t := range r.types {
		if keep[t.Name] {
			ts = append(ts, t)
		}
	}
	return NewRegistry(ts)
}

// --- value-generator helpers ---

// pattern expands '#' to a random digit, '@' to a random lowercase letter,
// and '^' to a random uppercase letter; other runes pass through.
func pattern(p string) func(*rand.Rand) string {
	return func(rng *rand.Rand) string {
		var b strings.Builder
		for _, r := range p {
			switch r {
			case '#':
				b.WriteByte(byte('0' + rng.Intn(10)))
			case '@':
				b.WriteByte(byte('a' + rng.Intn(26)))
			case '^':
				b.WriteByte(byte('A' + rng.Intn(26)))
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
}

// choice picks uniformly from opts.
func choice(opts ...string) func(*rand.Rand) string {
	return func(rng *rand.Rand) string { return opts[rng.Intn(len(opts))] }
}

// intRange renders a uniform integer in [lo, hi].
func intRange(lo, hi int) func(*rand.Rand) string {
	return func(rng *rand.Rand) string { return fmt.Sprintf("%d", lo+rng.Intn(hi-lo+1)) }
}

// floatRange renders a uniform float in [lo, hi) with prec decimals.
func floatRange(lo, hi float64, prec int) func(*rand.Rand) string {
	return func(rng *rand.Rand) string {
		return fmt.Sprintf("%.*f", prec, lo+rng.Float64()*(hi-lo))
	}
}

// compose joins the outputs of gens with sep.
func compose(sep string, gens ...func(*rand.Rand) string) func(*rand.Rand) string {
	return func(rng *rand.Rand) string {
		parts := make([]string, len(gens))
		for i, g := range gens {
			parts[i] = g(rng)
		}
		return strings.Join(parts, sep)
	}
}

var (
	firstNames = []string{"james", "mary", "wei", "olivia", "li", "noah", "emma", "lucas", "mia", "chen", "sofia", "hugo", "yuki", "anna", "omar", "ivan", "lena", "marco", "nina", "raj"}
	lastNames  = []string{"smith", "johnson", "wang", "garcia", "mueller", "tanaka", "silva", "kumar", "lopez", "kim", "chen", "brown", "rossi", "novak", "ali", "park", "santos", "weber", "mori", "diaz"}
	cities     = []string{"london", "paris", "tokyo", "beijing", "sydney", "toronto", "berlin", "madrid", "rome", "cairo", "mumbai", "seoul", "lagos", "lima", "oslo", "dublin", "vienna", "prague", "athens", "dubai"}
	countries  = []string{"france", "japan", "brazil", "canada", "germany", "india", "china", "egypt", "spain", "italy", "kenya", "norway", "peru", "poland", "qatar", "russia", "sweden", "turkey", "vietnam", "mexico"}
	companies  = []string{"acme corp", "globex", "initech", "umbrella", "stark industries", "wayne enterprises", "hooli", "vandelay", "wonka", "cyberdyne", "tyrell", "aperture", "oscorp", "dunder mifflin", "monsters inc"}
	jobTitles  = []string{"software engineer", "data analyst", "product manager", "accountant", "nurse", "teacher", "electrician", "designer", "architect", "chef", "pilot", "lawyer", "scientist", "editor", "surveyor"}
	colors     = []string{"red", "blue", "green", "yellow", "purple", "orange", "black", "white", "cyan", "magenta", "teal", "maroon", "navy", "olive", "silver"}
	languages  = []string{"english", "mandarin", "spanish", "hindi", "arabic", "french", "russian", "portuguese", "german", "japanese", "korean", "italian", "dutch", "turkish", "swedish"}
	genres     = []string{"rock", "pop", "jazz", "classical", "hip hop", "electronic", "country", "blues", "folk", "metal", "reggae", "soul", "punk", "ambient", "disco"}
	teams      = []string{"eagles", "tigers", "sharks", "wolves", "hawks", "lions", "bears", "falcons", "panthers", "dragons", "knights", "rangers", "pirates", "giants", "royals"}
	streets    = []string{"main st", "oak ave", "maple dr", "park rd", "cedar ln", "elm st", "lake view", "hill crest", "river rd", "sunset blvd", "kings way", "church st", "station rd", "garden ter", "mill ln"}
	currencies = []string{"USD", "EUR", "JPY", "GBP", "CNY", "AUD", "CAD", "CHF", "SEK", "INR"}
	statuses   = []string{"active", "inactive", "pending", "archived", "deleted", "suspended", "approved", "rejected", "draft", "closed"}
	depts      = []string{"engineering", "marketing", "sales", "finance", "operations", "legal", "support", "research", "logistics", "procurement"}
	mimes      = []string{"text/html", "application/json", "image/png", "image/jpeg", "application/pdf", "text/csv", "video/mp4", "audio/mpeg", "application/zip", "text/plain"}
	albums     = []string{"midnight echoes", "golden hour", "paper skies", "neon river", "quiet storm", "glass houses", "wild horizon", "silver lining", "velvet dawn", "long roads"}
	genders    = []string{"male", "female", "other", "unknown"}
	brands     = []string{"zenith", "polaris", "nimbus", "vertex", "solace", "kinetic", "aurora", "catalyst", "ember", "drift"}
)

func nameGen(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

func dateGen(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1950+rng.Intn(75), 1+rng.Intn(12), 1+rng.Intn(28))
}

func datetimeGen(rng *rand.Rand) string {
	return dateGen(rng) + fmt.Sprintf(" %02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60))
}

func emailGen(rng *rand.Rand) string {
	domains := []string{"example.com", "mail.net", "corp.org", "cloud.io", "inbox.cn"}
	return firstNames[rng.Intn(len(firstNames))] + "." + lastNames[rng.Intn(len(lastNames))] + "@" + domains[rng.Intn(len(domains))]
}

func urlGen(rng *rand.Rand) string {
	hosts := []string{"example.com", "docs.site.org", "app.cloud.io", "shop.store.net", "blog.media.cn"}
	paths := []string{"home", "about", "items", "docs", "post", "page", "view", "list"}
	return "https://" + hosts[rng.Intn(len(hosts))] + "/" + paths[rng.Intn(len(paths))] + fmt.Sprintf("/%d", rng.Intn(10000))
}

func ibanGen(rng *rand.Rand) string {
	cc := []string{"DE", "FR", "GB", "ES", "NL"}
	d := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('0' + rng.Intn(10)))
		}
		return b.String()
	}
	return cc[rng.Intn(len(cc))] + d(2) + d(18)
}

func fileNameGen(rng *rand.Rand) string {
	stems := []string{"report", "invoice", "summary", "data", "backup", "photo", "notes", "draft"}
	exts := []string{".pdf", ".csv", ".txt", ".png", ".docx", ".xlsx", ".zip", ".json"}
	return stems[rng.Intn(len(stems))] + fmt.Sprintf("_%d", rng.Intn(1000)) + exts[rng.Intn(len(exts))]
}

func userAgentGen(rng *rand.Rand) string {
	uas := []string{
		"Mozilla/5.0 (Windows NT 10.0) Chrome/1##.0",
		"Mozilla/5.0 (Macintosh) Safari/6##.1",
		"Mozilla/5.0 (X11; Linux) Firefox/1##.0",
		"curl/8.#.#",
	}
	return pattern(uas[rng.Intn(len(uas))])(rng)
}

func nullValueGen(rng *rand.Rand) string {
	// Columns without a semantic type hold miscellaneous values that do
	// not follow any recognizable protocol.
	switch rng.Intn(5) {
	case 0:
		return pattern("@@@@@@")(rng)
	case 1:
		return fmt.Sprintf("%d", rng.Intn(1000000))
	case 2:
		return pattern("x-^^##@@")(rng)
	case 3:
		return choice("yes", "no", "n/a", "tbd", "ok")(rng)
	default:
		return pattern("@@@ @@@@@ @@")(rng)
	}
}

// DefaultRegistry builds the full built-in semantic type domain (60 types).
func DefaultRegistry() *Registry {
	return NewRegistry(defaultTypes())
}

func defaultTypes() []*Type {
	return []*Type{
		// --- PII / identity ---
		{Name: "first_name", Category: "person", SQLType: "VARCHAR", ColumnNames: []string{"first_name", "firstname", "given_name", "fname"}, Comments: []string{"given name of the person", "first name"}, Gen: choice(firstNames...)},
		{Name: "last_name", Category: "person", SQLType: "VARCHAR", ColumnNames: []string{"last_name", "surname", "family_name", "lname"}, Comments: []string{"family name", "surname of the person"}, Gen: choice(lastNames...)},
		{Name: "full_name", Category: "person", SQLType: "VARCHAR", ColumnNames: []string{"full_name", "person_name", "customer_name", "employee_name"}, Comments: []string{"full legal name", "name of the customer"}, Gen: nameGen, CoTypes: []string{"first_name"}},
		{Name: "email", Category: "contact", SQLType: "VARCHAR", ColumnNames: []string{"email", "email_address", "mail", "contact_email"}, Comments: []string{"email address", "primary contact email"}, Gen: emailGen},
		{Name: "phone_number", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"phone", "phone_number", "mobile", "telephone"}, Comments: []string{"contact phone number", "mobile phone"}, Gen: pattern("1##########")},
		{Name: "credit_card_number", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"credit_card", "card_number", "cc_number", "payment_card"}, Comments: []string{"payment card number", "credit card for billing"}, Gen: pattern("4###############")},
		{Name: "ssn", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"ssn", "social_security", "national_id"}, Comments: []string{"social security number"}, Gen: pattern("###-##-####")},
		{Name: "passport_number", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"passport", "passport_no", "passport_number"}, Comments: []string{"passport document number"}, Gen: pattern("^########")},
		{Name: "iban", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"iban", "bank_account", "account_iban"}, Comments: []string{"international bank account number"}, Gen: ibanGen},
		{Name: "license_plate", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"license_plate", "plate_number", "vehicle_plate"}, Comments: []string{"vehicle registration plate"}, Gen: pattern("^^##-^^^")},
		{Name: "uuid", Category: "identifier", SQLType: "VARCHAR", ColumnNames: []string{"uuid", "guid", "object_id"}, Comments: []string{"globally unique identifier"}, Gen: pattern("########-####-####-####-############")},
		{Name: "user_id", Category: "identifier", SQLType: "INT", ColumnNames: []string{"user_id", "uid", "account_id", "customer_id"}, Comments: []string{"internal user identifier"}, Gen: intRange(1, 999999)},
		{Name: "username", Category: "person", SQLType: "VARCHAR", ColumnNames: []string{"username", "login", "handle", "nickname"}, Comments: []string{"login handle"}, Gen: compose("_", choice(firstNames...), intRange(1, 999))},
		{Name: "gender", Category: "category", SQLType: "VARCHAR", ColumnNames: []string{"gender", "sex"}, Comments: []string{"gender of the person"}, Gen: choice(genders...)},
		{Name: "age", Category: "measure", SQLType: "INT", ColumnNames: []string{"age", "person_age", "age_years"}, Comments: []string{"age in years"}, Gen: intRange(1, 99)},
		{Name: "job_title", Category: "business", SQLType: "VARCHAR", ColumnNames: []string{"job_title", "occupation", "position", "role"}, Comments: []string{"occupation of the person"}, Gen: choice(jobTitles...)},
		// --- geo ---
		{Name: "country", Category: "geo", SQLType: "VARCHAR", ColumnNames: []string{"country", "nation", "country_name"}, Comments: []string{"country name"}, Gen: choice(countries...)},
		{Name: "city", Category: "geo", SQLType: "VARCHAR", ColumnNames: []string{"city", "town", "city_name"}, Comments: []string{"city of residence"}, Gen: choice(cities...), CoTypes: []string{"country"}},
		{Name: "address", Category: "geo", SQLType: "VARCHAR", ColumnNames: []string{"address", "street_address", "addr"}, Comments: []string{"street address"}, Gen: compose(" ", intRange(1, 9999), choice(streets...))},
		{Name: "zip_code", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"zip", "zip_code", "postal_code", "postcode"}, Comments: []string{"postal code"}, Gen: pattern("#####")},
		{Name: "latitude", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"latitude", "lat"}, Comments: []string{"latitude in degrees"}, Gen: floatRange(-90, 90, 5)},
		{Name: "longitude", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"longitude", "lon", "lng"}, Comments: []string{"longitude in degrees"}, Gen: floatRange(-180, 180, 5)},
		{Name: "ip_address", Category: "network", SQLType: "VARCHAR", ColumnNames: []string{"ip", "ip_address", "client_ip", "host_ip"}, Comments: []string{"ipv4 address of the client"}, Gen: func(rng *rand.Rand) string {
			return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(254), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
		}},
		{Name: "mac_address", Category: "network", SQLType: "VARCHAR", ColumnNames: []string{"mac", "mac_address", "hw_addr"}, Comments: []string{"hardware mac address"}, Gen: func(rng *rand.Rand) string {
			parts := make([]string, 6)
			for i := range parts {
				parts[i] = fmt.Sprintf("%02x", rng.Intn(256))
			}
			return strings.Join(parts, ":")
		}},
		{Name: "url", Category: "network", SQLType: "VARCHAR", ColumnNames: []string{"url", "link", "website", "homepage"}, Comments: []string{"web page url"}, Gen: urlGen},
		{Name: "user_agent", Category: "network", SQLType: "VARCHAR", ColumnNames: []string{"user_agent", "browser", "ua_string"}, Comments: []string{"http user agent header"}, Gen: userAgentGen},
		// --- temporal ---
		{Name: "date", Category: "temporal", SQLType: "DATE", ColumnNames: []string{"date", "event_date", "start_date", "dob"}, Comments: []string{"calendar date"}, Gen: dateGen},
		{Name: "datetime", Category: "temporal", SQLType: "DATETIME", ColumnNames: []string{"timestamp", "created_at", "updated_at", "event_time"}, Comments: []string{"timestamp of the event"}, Gen: datetimeGen},
		{Name: "year", Category: "temporal", SQLType: "INT", ColumnNames: []string{"year", "release_year", "founded_year"}, Comments: []string{"four digit year"}, Gen: intRange(1900, 2025)},
		{Name: "month", Category: "temporal", SQLType: "VARCHAR", ColumnNames: []string{"month", "month_name"}, Comments: []string{"month of the year"}, Gen: choice("january", "february", "march", "april", "may", "june", "july", "august", "september", "october", "november", "december")},
		{Name: "weekday", Category: "temporal", SQLType: "VARCHAR", ColumnNames: []string{"weekday", "day_of_week"}, Comments: []string{"day of the week"}, Gen: choice("monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday")},
		{Name: "duration", Category: "measure", SQLType: "INT", ColumnNames: []string{"duration", "runtime", "elapsed_sec"}, Comments: []string{"duration in seconds"}, Gen: intRange(1, 86400)},
		// --- commerce / business ---
		{Name: "price", Category: "money", SQLType: "DECIMAL", ColumnNames: []string{"price", "unit_price", "cost", "amount"}, Comments: []string{"price in local currency"}, Gen: floatRange(0.5, 9999, 2)},
		{Name: "currency", Category: "category", SQLType: "VARCHAR", ColumnNames: []string{"currency", "currency_code"}, Comments: []string{"iso currency code"}, Gen: choice(currencies...)},
		{Name: "company", Category: "business", SQLType: "VARCHAR", ColumnNames: []string{"company", "employer", "organization", "vendor"}, Comments: []string{"company name"}, Gen: choice(companies...)},
		{Name: "department", Category: "business", SQLType: "VARCHAR", ColumnNames: []string{"department", "dept", "division"}, Comments: []string{"internal department"}, Gen: choice(depts...)},
		{Name: "product_name", Category: "business", SQLType: "VARCHAR", ColumnNames: []string{"product", "product_name", "item_name"}, Comments: []string{"catalog product name"}, Gen: compose(" ", choice(brands...), choice("mini", "pro", "max", "lite", "plus", "x"))},
		{Name: "sku", Category: "identifier", SQLType: "VARCHAR", ColumnNames: []string{"sku", "item_code", "product_code"}, Comments: []string{"stock keeping unit"}, Gen: pattern("^^^-####")},
		{Name: "order_status", Category: "category", SQLType: "VARCHAR", ColumnNames: []string{"status", "order_status", "state"}, Comments: []string{"lifecycle status"}, Gen: choice(statuses...)},
		{Name: "quantity", Category: "measure", SQLType: "INT", ColumnNames: []string{"quantity", "qty", "count", "units"}, Comments: []string{"number of units"}, Gen: intRange(1, 500)},
		{Name: "discount_pct", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"discount", "discount_pct", "pct_off"}, Comments: []string{"discount percentage"}, Gen: floatRange(0, 90, 1)},
		{Name: "rating", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"rating", "score", "stars"}, Comments: []string{"review rating out of five"}, Gen: floatRange(0, 5, 1)},
		{Name: "isbn", Category: "numeric_id", SQLType: "VARCHAR", ColumnNames: []string{"isbn", "isbn13", "book_isbn"}, Comments: []string{"international standard book number"}, Gen: pattern("978-#-####-####-#")},
		// --- media / culture (WikiTable flavour) ---
		{Name: "album", Category: "media", SQLType: "VARCHAR", ColumnNames: []string{"album", "album_title", "record"}, Comments: []string{"music album title"}, Gen: choice(albums...)},
		{Name: "artist", Category: "media", SQLType: "VARCHAR", ColumnNames: []string{"artist", "performer", "musician"}, Comments: []string{"performing artist"}, Gen: nameGen, CoTypes: []string{"full_name"}},
		{Name: "genre", Category: "media", SQLType: "VARCHAR", ColumnNames: []string{"genre", "music_genre", "style"}, Comments: []string{"music genre"}, Gen: choice(genres...)},
		{Name: "team", Category: "media", SQLType: "VARCHAR", ColumnNames: []string{"team", "club", "team_name"}, Comments: []string{"sports team"}, Gen: choice(teams...)},
		{Name: "language", Category: "category", SQLType: "VARCHAR", ColumnNames: []string{"language", "lang", "spoken_language"}, Comments: []string{"natural language"}, Gen: choice(languages...)},
		{Name: "color", Category: "category", SQLType: "VARCHAR", ColumnNames: []string{"color", "colour", "paint_color"}, Comments: []string{"color name"}, Gen: choice(colors...)},
		// --- measures ---
		{Name: "temperature_c", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"temperature", "temp_c", "celsius"}, Comments: []string{"temperature in celsius"}, Gen: floatRange(-40, 50, 1)},
		{Name: "weight_kg", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"weight", "weight_kg", "mass"}, Comments: []string{"weight in kilograms"}, Gen: floatRange(0.1, 500, 2)},
		{Name: "height_cm", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"height", "height_cm", "stature"}, Comments: []string{"height in centimeters"}, Gen: floatRange(30, 220, 1)},
		{Name: "population", Category: "measure", SQLType: "BIGINT", ColumnNames: []string{"population", "pop", "inhabitants"}, Comments: []string{"number of inhabitants"}, Gen: intRange(1000, 40000000)},
		{Name: "area_km2", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"area", "area_km2", "surface"}, Comments: []string{"area in square kilometers"}, Gen: floatRange(0.1, 100000, 1)},
		{Name: "percentage", Category: "measure", SQLType: "DOUBLE", ColumnNames: []string{"percentage", "pct", "share"}, Comments: []string{"share in percent"}, Gen: floatRange(0, 100, 2)},
		// --- files / tech ---
		{Name: "file_name", Category: "tech", SQLType: "VARCHAR", ColumnNames: []string{"file_name", "filename", "file"}, Comments: []string{"name of the file"}, Gen: fileNameGen},
		{Name: "mime_type", Category: "tech", SQLType: "VARCHAR", ColumnNames: []string{"mime_type", "content_type", "media_type"}, Comments: []string{"mime content type"}, Gen: choice(mimes...)},
		{Name: "file_size", Category: "measure", SQLType: "BIGINT", ColumnNames: []string{"file_size", "size_bytes", "bytes"}, Comments: []string{"file size in bytes"}, Gen: intRange(10, 1000000000)},
		{Name: "version", Category: "tech", SQLType: "VARCHAR", ColumnNames: []string{"version", "semver", "release"}, Comments: []string{"software version"}, Gen: pattern("#.##.#")},
		{Name: "hex_color", Category: "tech", SQLType: "VARCHAR", ColumnNames: []string{"hex_color", "color_code", "rgb_hex"}, Comments: []string{"hex color code"}, Gen: func(rng *rand.Rand) string { return fmt.Sprintf("#%06x", rng.Intn(1<<24)) }},
		{Name: "boolean_flag", Category: "category", SQLType: "TINYINT", ColumnNames: []string{"is_active", "enabled", "flag", "verified"}, Comments: []string{"boolean flag"}, Gen: choice("0", "1")},
	}
}

// AmbiguousNames lists uninformative column names per category. A column
// whose generator decides to be "ambiguous" draws from its category pool
// plus the global pool, hiding the type from metadata-only inspection.
var AmbiguousNames = map[string][]string{
	"numeric_id": {"num", "number", "no"},
	"contact":    {"contact", "reach"},
	"person":     {"name", "person"},
	"geo":        {"location", "place"},
	"measure":    {"value", "amount", "measure"},
	"temporal":   {"time", "when"},
	"category":   {"type", "kind", "class"},
	"media":      {"title", "entry"},
	"business":   {"org", "unit"},
	"network":    {"addr", "endpoint"},
	"identifier": {"id", "key", "ref"},
	"money":      {"value", "amount"},
	"tech":       {"info", "attr"},
}

// globalAmbiguousNames may appear on any column regardless of category.
var globalAmbiguousNames = []string{"col1", "col2", "field", "data", "val", "x"}

// NullColumnNames are used for columns with no semantic type. They are
// deliberately distinct from AmbiguousNames so that "unknown type" and
// "ambiguous type" are different populations, as in real data lakes where
// most unlabeled columns are recognizably miscellaneous.
var NullColumnNames = []string{"notes", "remark", "misc", "extra", "memo", "comment_text", "aux", "padding", "reserved", "blob9"}
