// Package pipeline implements the pipelined execution engine of §5
// (Algorithm 1): each table contributes an ordered list of stages
// alternating between data preparation (I/O + CPU) and inference (compute),
// and a scheduler interleaves stages of different tables across two worker
// pools so that one table's inference overlaps another's data fetch.
//
// Both schedulers propagate a context.Context into every stage and stop
// dispatching once it is cancelled, so a per-request deadline genuinely
// cancels in-flight detection work instead of letting it run to completion.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// queueWait records how long a stage sat eligible-but-undispatched: the
// scheduler-added latency the paper's §5 pipelining analysis cares about.
// Stages are labeled by position (s1..s4 for Taste's four-stage jobs) so the
// histogram lines up with the per-stage duration series in core.
func queueWait(stageIdx int, kind StageKind, d time.Duration) {
	obs.Default.LatencyHistogram("taste_pipeline_queue_wait_seconds",
		"stage", fmt.Sprintf("s%d", stageIdx+1), "kind", kind.String()).ObserveDuration(d)
}

// StageKind distinguishes the two resource classes of §5.
type StageKind int

const (
	// Prep stages consume I/O and CPU (run on thread pool TP1).
	Prep StageKind = iota
	// Infer stages consume compute — the GPU in the paper, the inference
	// worker pool here (TP2).
	Infer
)

// String implements fmt.Stringer.
func (k StageKind) String() string {
	if k == Prep {
		return "prep"
	}
	return "infer"
}

// Stage is one unit of work for one job (table). Run receives the batch
// context and may return an error; a failed stage cancels the job's
// remaining stages but not other jobs.
type Stage struct {
	Kind StageKind
	Name string
	Run  func(ctx context.Context) error
}

// Job is an ordered list of stages for one table: P1-prep, P1-infer,
// P2-prep, P2-infer in the Taste framework.
type Job struct {
	ID     string
	Stages []Stage
	// Err records the first stage error, if any. When the batch context is
	// cancelled before the job finishes, Err is the context's error.
	Err error
}

// Scheduler runs jobs either sequentially (the baseline execution mode of
// prior work) or pipelined per Algorithm 1.
type Scheduler struct {
	// PrepWorkers is the size of thread pool TP1 (≥1).
	PrepWorkers int
	// InferWorkers is the size of thread pool TP2 (≥1).
	InferWorkers int
	// Pipelined selects Algorithm 1; false degenerates to the sequential
	// mode that processes tables and stages one by one.
	Pipelined bool
}

// Validate reports configuration errors.
func (s Scheduler) Validate() error {
	if s.Pipelined && (s.PrepWorkers < 1 || s.InferWorkers < 1) {
		return fmt.Errorf("pipeline: pipelined mode needs at least one worker per pool, got %d/%d", s.PrepWorkers, s.InferWorkers)
	}
	return nil
}

// Run executes all jobs under ctx and returns after every job finishes,
// fails, or is cancelled. A nil ctx means context.Background(). Run never
// leaks goroutines: it waits for in-flight stages even after cancellation.
func (s Scheduler) Run(ctx context.Context, jobs []*Job) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.Pipelined {
		runSequential(ctx, jobs)
		return nil
	}
	runPipelined(ctx, jobs, s.PrepWorkers, s.InferWorkers)
	return nil
}

// runSequential processes tables one by one, each stage in order — the
// execution mode of TURL/Doduo and of "Taste w/o pipelining".
func runSequential(ctx context.Context, jobs []*Job) {
	for _, j := range jobs {
		for _, st := range j.Stages {
			if err := ctx.Err(); err != nil {
				j.Err = err
				break
			}
			if err := st.Run(ctx); err != nil {
				j.Err = fmt.Errorf("stage %s: %w", st.Name, err)
				break
			}
		}
	}
}

// runPipelined implements Algorithm 1. The stage queue holds every stage of
// every job; a stage is eligible when all previous stages of the same job
// have finished (Definition 5.1). Whenever a pool has a free worker, the
// first eligible stage of the matching kind is dispatched. Once ctx is
// cancelled no further stages are dispatched; in-flight stages are drained
// and every unfinished job records the context error.
func runPipelined(ctx context.Context, jobs []*Job, prepWorkers, inferWorkers int) {
	type jobState struct {
		job  *Job
		next int // index of the next stage to dispatch
		busy bool
		// readyAt is when the job's next stage became eligible (job
		// submission, or the previous stage's completion); dispatch-readyAt
		// is the stage's queue wait.
		readyAt time.Time
	}
	now := time.Now()
	states := make([]*jobState, len(jobs))
	remaining := 0
	for i, j := range jobs {
		states[i] = &jobState{job: j, readyAt: now}
		remaining += len(j.Stages)
	}

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	prepActive, inferActive := 0, 0

	// Wake the dispatch loop when the context dies so cancellation is
	// observed even while every worker slot is idle.
	stopWatch := context.AfterFunc(ctx, func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	defer stopWatch()

	// pollEligible returns an eligible job whose next stage matches kind
	// (previous stages done, not already dispatched). Each kind scans
	// round-robin from just past its last dispatch, so early jobs in the
	// slice cannot monopolize a pool and starve later jobs' stages
	// (head-of-line unfairness): with equal-length jobs the pools rotate
	// through all of them, which is what keeps prep and inference of
	// *different* tables overlapped (§5).
	prepCur, inferCur := -1, -1
	pollEligible := func(kind StageKind) *jobState {
		cur := &prepCur
		if kind == Infer {
			cur = &inferCur
		}
		n := len(states)
		if n == 0 {
			return nil
		}
		for off := 1; off <= n; off++ {
			i := (*cur + off) % n
			st := states[i]
			if st.busy || st.job.Err != nil || st.next >= len(st.job.Stages) {
				continue
			}
			if st.job.Stages[st.next].Kind == kind {
				*cur = i
				return st
			}
		}
		return nil
	}

	dispatch := func(st *jobState) {
		stage := st.job.Stages[st.next]
		st.busy = true
		queueWait(st.next, stage.Kind, time.Since(st.readyAt))
		go func() {
			err := stage.Run(ctx)
			mu.Lock()
			st.busy = false
			st.readyAt = time.Now()
			if err != nil {
				st.job.Err = fmt.Errorf("stage %s: %w", stage.Name, err)
				// Cancel the job's remaining stages.
				remaining -= len(st.job.Stages) - st.next
			} else {
				st.next++
				remaining--
			}
			if stage.Kind == Prep {
				prepActive--
			} else {
				inferActive--
			}
			cond.Broadcast()
			mu.Unlock()
		}()
	}

	mu.Lock()
	defer mu.Unlock()
	for remaining > 0 {
		if ctx.Err() != nil {
			break
		}
		progressed := false
		if prepActive < prepWorkers {
			if st := pollEligible(Prep); st != nil {
				prepActive++
				dispatch(st)
				progressed = true
			}
		}
		if inferActive < inferWorkers {
			if st := pollEligible(Infer); st != nil {
				inferActive++
				dispatch(st)
				progressed = true
			}
		}
		if !progressed {
			if prepActive == 0 && inferActive == 0 {
				// Nothing runnable and nothing running: only possible when
				// all remaining stages belong to failed jobs (already
				// subtracted), so remaining must have hit zero — guard
				// against scheduler bugs turning into livelock.
				if remaining > 0 {
					panic("pipeline: scheduler deadlock")
				}
				break
			}
			cond.Wait()
		}
	}
	// Drain: wait for in-flight stages so Run's completion is a barrier.
	for prepActive > 0 || inferActive > 0 {
		cond.Wait()
	}
	// Attribute the cancellation to every job the scheduler abandoned.
	if err := ctx.Err(); err != nil {
		for _, st := range states {
			if st.job.Err == nil && st.next < len(st.job.Stages) {
				st.job.Err = err
			}
		}
	}
}
