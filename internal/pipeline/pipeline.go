// Package pipeline implements the pipelined execution engine of §5
// (Algorithm 1): each table contributes an ordered list of stages
// alternating between data preparation (I/O + CPU) and inference (compute),
// and a work-stealing scheduler interleaves stages of different tables
// across a single worker pool so that one table's inference overlaps
// another's data fetch (DESIGN.md §16).
//
// Both schedulers propagate a context.Context into every stage and stop
// dispatching once it is cancelled, so a per-request deadline genuinely
// cancels in-flight detection work instead of letting it run to completion.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// queueWait records how long a stage sat runnable-but-undispatched in a
// worker deque: the scheduler-added latency the paper's §5 pipelining
// analysis cares about. Stages are labeled by position (s1..s4 for Taste's
// four-stage jobs) so the histogram lines up with the per-stage duration
// series in core; the stolen label splits waits of migrated stages from
// stages their owner ran locally.
func queueWait(stageIdx int, kind StageKind, stolen bool, d time.Duration) {
	obs.Default.LatencyHistogram("taste_pipeline_queue_wait_seconds",
		"stage", fmt.Sprintf("s%d", stageIdx+1),
		"kind", kind.String(),
		"stolen", fmt.Sprintf("%v", stolen)).ObserveDuration(d)
}

// StageKind distinguishes the two resource classes of §5. The work-stealing
// scheduler treats the kind as a priority hint, not a dedicated lane: a
// worker prefers running its own freshest Infer stage (hot caches) and
// stealing victims' oldest Prep stages (starts I/O early so it overlaps
// the victim's compute).
type StageKind int

const (
	// Prep stages consume I/O and CPU (thread pool TP1 in the paper).
	Prep StageKind = iota
	// Infer stages consume compute — the GPU in the paper, the inference
	// workers here (TP2).
	Infer
)

// String implements fmt.Stringer.
func (k StageKind) String() string {
	if k == Prep {
		return "prep"
	}
	return "infer"
}

// Stage is one unit of work for one job (table). Run receives the batch
// context and may return an error; a failed stage cancels the job's
// remaining stages but not other jobs.
type Stage struct {
	Kind StageKind
	Name string
	Run  func(ctx context.Context) error
}

// Job is an ordered list of stages for one table: P1-prep, P1-infer,
// P2-prep, P2-infer in the Taste framework.
type Job struct {
	ID     string
	Stages []Stage
	// Err records the first stage error, if any. When the batch context is
	// cancelled before the job finishes, Err is the context's error.
	Err error
}

// Scheduler runs jobs either sequentially (the baseline execution mode of
// prior work) or through the work-stealing pool (Algorithm 1 + DESIGN.md
// §16).
type Scheduler struct {
	// Workers sizes the unified work-stealing pool (≥1). 0 derives the
	// size from PrepWorkers+InferWorkers — the capacity the old dedicated
	// pools offered — or defaults to 4 (the paper's 2+2) when those are
	// unset too. Negative is invalid.
	Workers int
	// PrepWorkers and InferWorkers are the legacy §5 fixed-pool sizes,
	// kept as capacity inputs: stage kinds are scheduling priorities now,
	// not lanes, so the two only contribute to the pool size.
	PrepWorkers  int
	InferWorkers int
	// Pipelined selects the work-stealing engine; false degenerates to the
	// sequential mode that processes tables and stages one by one.
	Pipelined bool
}

// WorkerCount resolves the effective pool size per the Workers field's
// derivation rules.
func (s Scheduler) WorkerCount() int {
	if s.Workers != 0 {
		return s.Workers
	}
	if n := s.PrepWorkers + s.InferWorkers; n > 0 {
		return n
	}
	return 4
}

// Validate reports configuration errors.
func (s Scheduler) Validate() error {
	if !s.Pipelined {
		return nil
	}
	if s.Workers < 0 || s.PrepWorkers < 0 || s.InferWorkers < 0 || s.WorkerCount() < 1 {
		return fmt.Errorf("pipeline: pipelined mode needs a positive worker count, got workers=%d prep=%d infer=%d",
			s.Workers, s.PrepWorkers, s.InferWorkers)
	}
	return nil
}

// Stats summarizes one Run of the work-stealing engine.
type Stats struct {
	// Steals counts steal operations that migrated at least one stage from
	// a victim's deque.
	Steals int64
	// Stolen counts stages migrated by those steals (steal-half takes up
	// to half a victim queue per operation).
	Stolen int64
	// MaxQueueDepth is the peak number of runnable stages queued across
	// all worker deques at any instant.
	MaxQueueDepth int
}

// Run executes all jobs under ctx and returns after every job finishes,
// fails, or is cancelled. A nil ctx means context.Background(). Run never
// leaks goroutines: it waits for in-flight stages even after cancellation.
func (s Scheduler) Run(ctx context.Context, jobs []*Job) error {
	_, err := s.RunStats(ctx, jobs)
	return err
}

// RunStats is Run plus the engine's steal/queue statistics (zero for
// sequential mode).
func (s Scheduler) RunStats(ctx context.Context, jobs []*Job) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.Pipelined {
		runSequential(ctx, jobs)
		return Stats{}, nil
	}
	return runStealing(ctx, jobs, s.WorkerCount()), nil
}

// runSequential processes tables one by one, each stage in order — the
// execution mode of TURL/Doduo and of "Taste w/o pipelining".
func runSequential(ctx context.Context, jobs []*Job) {
	for _, j := range jobs {
		for _, st := range j.Stages {
			if err := ctx.Err(); err != nil {
				j.Err = err
				break
			}
			if err := st.Run(ctx); err != nil {
				j.Err = fmt.Errorf("stage %s: %w", st.Name, err)
				break
			}
		}
	}
}
