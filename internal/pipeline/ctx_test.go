package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// blockingJobs builds n jobs whose stages block until their context dies,
// counting how many stage invocations ever started.
func blockingJobs(n int, started *atomic.Int64) []*Job {
	jobs := make([]*Job, n)
	for i := range jobs {
		j := &Job{ID: fmt.Sprintf("job%d", i)}
		for k, kind := range []StageKind{Prep, Infer, Prep, Infer} {
			j.Stages = append(j.Stages, Stage{Kind: kind, Name: fmt.Sprintf("s%d", k), Run: func(ctx context.Context) error {
				started.Add(1)
				<-ctx.Done()
				return ctx.Err()
			}})
		}
		jobs[i] = j
	}
	return jobs
}

func TestSequentialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	jobs := blockingJobs(4, &started)
	time.AfterFunc(20*time.Millisecond, cancel)
	if err := (Scheduler{}).Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !errors.Is(j.Err, context.Canceled) {
			t.Fatalf("job %s: err = %v, want context.Canceled", j.ID, j.Err)
		}
	}
	// Sequential mode runs one stage at a time; only the first ever started.
	if got := started.Load(); got != 1 {
		t.Fatalf("stages started = %d, want 1", got)
	}
}

func TestPipelinedCancellationDrainsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	jobs := blockingJobs(8, &started)
	time.AfterFunc(20*time.Millisecond, cancel)
	if err := (Scheduler{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}).Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !errors.Is(j.Err, context.Canceled) {
			t.Fatalf("job %s: err = %v, want context.Canceled", j.ID, j.Err)
		}
	}
	// Run is a barrier: every dispatched stage returned before it did. Give
	// the runtime a moment to reap worker goroutines, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestPipelinedDeadlineMarksUnfinishedJobs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var started atomic.Int64
	jobs := blockingJobs(4, &started)
	if err := (Scheduler{Pipelined: true, PrepWorkers: 1, InferWorkers: 1}).Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !errors.Is(j.Err, context.DeadlineExceeded) {
			t.Fatalf("job %s: err = %v, want DeadlineExceeded", j.ID, j.Err)
		}
	}
}

// TestPreCancelledContextRunsNothing: with the context dead before Run,
// no stage may start in either mode and every job carries the ctx error.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sched := range []Scheduler{{}, {Pipelined: true, PrepWorkers: 2, InferWorkers: 2}} {
		var started atomic.Int64
		jobs := blockingJobs(3, &started)
		if err := sched.Run(ctx, jobs); err != nil {
			t.Fatal(err)
		}
		if got := started.Load(); got != 0 {
			t.Fatalf("pipelined=%v: %d stages started on dead context", sched.Pipelined, got)
		}
		for _, j := range jobs {
			if !errors.Is(j.Err, context.Canceled) {
				t.Fatalf("pipelined=%v job %s: err = %v", sched.Pipelined, j.ID, j.Err)
			}
		}
	}
}

// TestCancellationDoesNotOverwriteStageErrors: a job that already failed
// with a real error keeps it; only unfinished clean jobs get the ctx error.
func TestCancellationDoesNotOverwriteStageErrors(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	badDone := make(chan struct{})
	bad := &Job{ID: "bad", Stages: []Stage{{Kind: Prep, Name: "p", Run: func(context.Context) error {
		close(badDone)
		return boom
	}}}}
	slow := &Job{ID: "slow", Stages: []Stage{{Kind: Prep, Name: "p", Run: func(ctx context.Context) error {
		<-badDone // the bad job has failed by the time the cancel fires
		cancel()
		<-ctx.Done()
		return ctx.Err()
	}}}}
	if err := (Scheduler{Pipelined: true, PrepWorkers: 1, InferWorkers: 1}).Run(ctx, []*Job{bad, slow}); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(bad.Err, boom) {
		t.Fatalf("bad job err = %v, want boom", bad.Err)
	}
	if !errors.Is(slow.Err, context.Canceled) {
		t.Fatalf("slow job err = %v, want Canceled", slow.Err)
	}
}

// TestCompletedJobsSurviveLateCancellation: jobs that finished before the
// cancellation keep a nil error.
func TestCompletedJobsSurviveLateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fastDone := make(chan struct{})
	fast := &Job{ID: "fast", Stages: []Stage{{Kind: Prep, Name: "p", Run: func(context.Context) error {
		close(fastDone)
		return nil
	}}}}
	slow := &Job{ID: "slow", Stages: []Stage{{Kind: Infer, Name: "i", Run: func(ctx context.Context) error {
		<-fastDone
		cancel()
		<-ctx.Done()
		return ctx.Err()
	}}}}
	if err := (Scheduler{Pipelined: true, PrepWorkers: 1, InferWorkers: 1}).Run(ctx, []*Job{fast, slow}); err != nil {
		t.Fatal(err)
	}
	if fast.Err != nil {
		t.Fatalf("fast job err = %v, want nil", fast.Err)
	}
	if !errors.Is(slow.Err, context.Canceled) {
		t.Fatalf("slow job err = %v", slow.Err)
	}
}
