package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingJob builds a 4-stage job (prep, infer, prep, infer) that records
// stage start/end events.
type event struct {
	job   string
	stage int
	kind  StageKind
	what  string // "start" | "end"
}

type recorder struct {
	mu     sync.Mutex
	events []event
}

func (r *recorder) add(e event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func makeJob(r *recorder, id string, d time.Duration) *Job {
	j := &Job{ID: id}
	for i := 0; i < 4; i++ {
		kind := Prep
		if i%2 == 1 {
			kind = Infer
		}
		i := i
		j.Stages = append(j.Stages, Stage{
			Kind: kind,
			Name: fmt.Sprintf("%s/%d", id, i),
			Run: func(context.Context) error {
				r.add(event{id, i, kind, "start"})
				time.Sleep(d)
				r.add(event{id, i, kind, "end"})
				return nil
			},
		})
	}
	return j
}

func TestSequentialRunsInOrder(t *testing.T) {
	r := &recorder{}
	jobs := []*Job{makeJob(r, "a", 0), makeJob(r, "b", 0)}
	s := Scheduler{Pipelined: false}
	if err := s.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(r.events) != 16 {
		t.Fatalf("events = %d", len(r.events))
	}
	// Strict sequential order: a0..a3 then b0..b3.
	for i, e := range r.events {
		wantJob := "a"
		idx := i
		if i >= 8 {
			wantJob = "b"
			idx = i - 8
		}
		if e.job != wantJob || e.stage != idx/2 {
			t.Fatalf("event %d = %+v, want job %s stage %d", i, e, wantJob, idx/2)
		}
	}
}

func TestPipelinedPreservesPerJobOrder(t *testing.T) {
	r := &recorder{}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, makeJob(r, fmt.Sprintf("j%d", i), time.Millisecond))
	}
	s := Scheduler{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}
	if err := s.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	// For each job, stage starts must be ordered and each stage must start
	// only after the previous ended.
	lastEnd := map[string]int{}
	for _, e := range r.events {
		if e.what == "start" {
			if e.stage != lastEnd[e.job] {
				t.Fatalf("job %s stage %d started before stage %d finished", e.job, e.stage, lastEnd[e.job])
			}
		} else {
			lastEnd[e.job] = e.stage + 1
		}
	}
	for _, j := range jobs {
		if j.Err != nil {
			t.Fatalf("job %s failed: %v", j.ID, j.Err)
		}
	}
}

func TestPipelinedOverlapsStages(t *testing.T) {
	r := &recorder{}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, makeJob(r, fmt.Sprintf("j%d", i), 3*time.Millisecond))
	}
	s := Scheduler{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}
	if err := s.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	// Overlap check: some stage must start while a stage of another job is
	// still running.
	running := map[string]bool{}
	overlap := false
	for _, e := range r.events {
		if e.what == "start" {
			for other := range running {
				if other != e.job {
					overlap = true
				}
			}
			running[e.job] = true
		} else {
			delete(running, e.job)
		}
	}
	if !overlap {
		t.Fatal("pipelined execution never overlapped jobs")
	}
}

func TestPipelinedFasterThanSequential(t *testing.T) {
	mk := func() []*Job {
		r := &recorder{}
		var jobs []*Job
		for i := 0; i < 6; i++ {
			jobs = append(jobs, makeJob(r, fmt.Sprintf("j%d", i), 2*time.Millisecond))
		}
		return jobs
	}
	start := time.Now()
	Scheduler{Pipelined: false}.Run(context.Background(), mk())
	seq := time.Since(start)
	start = time.Now()
	Scheduler{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}.Run(context.Background(), mk())
	pipe := time.Since(start)
	if pipe >= seq {
		t.Fatalf("pipelined (%v) not faster than sequential (%v)", pipe, seq)
	}
}

func TestWorkerCountCapsConcurrency(t *testing.T) {
	var active, maxActive int64
	var jobs []*Job
	for i := 0; i < 10; i++ {
		j := &Job{ID: fmt.Sprintf("j%d", i)}
		j.Stages = append(j.Stages, Stage{Kind: Prep, Name: "p", Run: func(context.Context) error {
			cur := atomic.AddInt64(&active, 1)
			for {
				old := atomic.LoadInt64(&maxActive)
				if cur <= old || atomic.CompareAndSwapInt64(&maxActive, old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&active, -1)
			return nil
		}})
		jobs = append(jobs, j)
	}
	Scheduler{Pipelined: true, Workers: 3}.Run(context.Background(), jobs)
	if m := atomic.LoadInt64(&maxActive); m > 3 {
		t.Fatalf("stage concurrency %d exceeded pool size 3", m)
	}
}

func TestWorkerCountDerivation(t *testing.T) {
	cases := []struct {
		s    Scheduler
		want int
	}{
		{Scheduler{Workers: 5}, 5},
		{Scheduler{PrepWorkers: 2, InferWorkers: 3}, 5},
		{Scheduler{PrepWorkers: 2}, 2},
		{Scheduler{}, 4},
		{Scheduler{Workers: 1, PrepWorkers: 8, InferWorkers: 8}, 1},
	}
	for _, c := range cases {
		if got := c.s.WorkerCount(); got != c.want {
			t.Fatalf("WorkerCount(%+v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestFailedStageCancelsJobOnly(t *testing.T) {
	boom := errors.New("boom")
	ran := make(map[string]bool)
	var mu sync.Mutex
	mark := func(k string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			ran[k] = true
			mu.Unlock()
			return nil
		}
	}
	bad := &Job{ID: "bad", Stages: []Stage{
		{Kind: Prep, Name: "bad/0", Run: func(context.Context) error { return boom }},
		{Kind: Infer, Name: "bad/1", Run: mark("bad/1")},
	}}
	good := &Job{ID: "good", Stages: []Stage{
		{Kind: Prep, Name: "good/0", Run: mark("good/0")},
		{Kind: Infer, Name: "good/1", Run: mark("good/1")},
	}}
	for _, pipelined := range []bool{false, true} {
		ran = map[string]bool{}
		bad.Err, good.Err = nil, nil
		s := Scheduler{Pipelined: pipelined, PrepWorkers: 1, InferWorkers: 1}
		if err := s.Run(context.Background(), []*Job{bad, good}); err != nil {
			t.Fatal(err)
		}
		if bad.Err == nil || !errors.Is(bad.Err, boom) {
			t.Fatalf("pipelined=%v: bad job error = %v", pipelined, bad.Err)
		}
		if ran["bad/1"] {
			t.Fatalf("pipelined=%v: failed job's later stages must not run", pipelined)
		}
		if !ran["good/0"] || !ran["good/1"] {
			t.Fatalf("pipelined=%v: other jobs must complete", pipelined)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Scheduler{Pipelined: true, Workers: -1}).Run(context.Background(), nil); err == nil {
		t.Fatal("expected validation error for negative worker count")
	}
	if err := (Scheduler{Pipelined: true, PrepWorkers: -2, InferWorkers: 3}).Run(context.Background(), nil); err == nil {
		t.Fatal("expected validation error for negative pool size")
	}
	if err := (Scheduler{Pipelined: true}).Run(context.Background(), nil); err != nil {
		t.Fatalf("pipelined with derived default pool must be fine: %v", err)
	}
	if err := (Scheduler{Pipelined: false}).Run(context.Background(), nil); err != nil {
		t.Fatalf("sequential with no workers must be fine: %v", err)
	}
}

func TestEmptyJobList(t *testing.T) {
	if err := (Scheduler{Pipelined: true, PrepWorkers: 1, InferWorkers: 1}).Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestJobWithNoStages(t *testing.T) {
	j := &Job{ID: "empty"}
	if err := (Scheduler{Pipelined: true, PrepWorkers: 1, InferWorkers: 1}).Run(context.Background(), []*Job{j}); err != nil {
		t.Fatal(err)
	}
}

func TestStageKindString(t *testing.T) {
	if Prep.String() != "prep" || Infer.String() != "infer" {
		t.Fatal("StageKind strings wrong")
	}
}

func TestManyJobsStress(t *testing.T) {
	var done int64
	var jobs []*Job
	for i := 0; i < 200; i++ {
		j := &Job{ID: fmt.Sprintf("j%d", i)}
		for k := 0; k < 4; k++ {
			kind := Prep
			if k%2 == 1 {
				kind = Infer
			}
			j.Stages = append(j.Stages, Stage{Kind: kind, Run: func(context.Context) error {
				atomic.AddInt64(&done, 1)
				return nil
			}})
		}
		jobs = append(jobs, j)
	}
	if err := (Scheduler{Pipelined: true, PrepWorkers: 4, InferWorkers: 4}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if done != 800 {
		t.Fatalf("ran %d stages, want 800", done)
	}
}

// TestSingleWorkerRunsDepthFirst pins the local deque discipline: a lone
// worker pops its own deque LIFO, so it drives the most recently runnable
// job to completion before touching older ones — the locality-first policy
// that keeps a job's latents hot across its stages. Three jobs of three
// infer stages each, seeded j0 j1 j2, must run j2 j2 j2 j1 j1 j1 j0 j0 j0.
func TestSingleWorkerRunsDepthFirst(t *testing.T) {
	const jobsN, stagesN = 3, 3
	var mu sync.Mutex
	var order []string
	var jobs []*Job
	for i := 0; i < jobsN; i++ {
		id := fmt.Sprintf("j%d", i)
		j := &Job{ID: id}
		for k := 0; k < stagesN; k++ {
			j.Stages = append(j.Stages, Stage{Kind: Infer, Name: fmt.Sprintf("%s/%d", id, k), Run: func(context.Context) error {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				return nil
			}})
		}
		jobs = append(jobs, j)
	}
	// One worker makes the schedule deterministic.
	if err := (Scheduler{Pipelined: true, Workers: 1}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	want := []string{"j2", "j2", "j2", "j1", "j1", "j1", "j0", "j0", "j0"}
	if len(order) != len(want) {
		t.Fatalf("ran %d stages, want %d", len(order), len(want))
	}
	for i, id := range order {
		if id != want[i] {
			t.Fatalf("schedule %v: position %d is %s, want %s (not depth-first LIFO)", order, i, id, want[i])
		}
	}
}
