package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealHammer is the exactly-once battery for the work-stealing engine:
// many jobs with mixed stage counts, kinds, and durations over a wide pool,
// run repeatedly (and under -race in CI). Every stage must run exactly once
// and strictly after its predecessor finished.
func TestStealHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		const jobsN = 60
		runs := make([][]atomic.Int32, jobsN)
		var jobs []*Job
		for i := 0; i < jobsN; i++ {
			stagesN := 1 + rng.Intn(6)
			runs[i] = make([]atomic.Int32, stagesN)
			j := &Job{ID: fmt.Sprintf("j%d", i)}
			for k := 0; k < stagesN; k++ {
				i, k := i, k
				kind := Prep
				if rng.Intn(2) == 1 {
					kind = Infer
				}
				var sleep time.Duration
				if rng.Intn(3) == 0 {
					sleep = time.Duration(rng.Intn(300)) * time.Microsecond
				}
				j.Stages = append(j.Stages, Stage{Kind: kind, Name: fmt.Sprintf("j%d/%d", i, k), Run: func(context.Context) error {
					if k > 0 && runs[i][k-1].Load() != 1 {
						t.Errorf("job %d stage %d started before stage %d finished", i, k, k-1)
					}
					if sleep > 0 {
						time.Sleep(sleep)
					}
					runs[i][k].Add(1)
					return nil
				}})
			}
			jobs = append(jobs, j)
		}
		stats, err := Scheduler{Pipelined: true, Workers: 8}.RunStats(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range runs {
			for k := range runs[i] {
				if n := runs[i][k].Load(); n != 1 {
					t.Fatalf("round %d: job %d stage %d ran %d times, want exactly 1", round, i, k, n)
				}
			}
		}
		if stats.Stolen < stats.Steals {
			t.Fatalf("stats inconsistent: %d stages stolen in %d steal operations", stats.Stolen, stats.Steals)
		}
		if stats.MaxQueueDepth < 1 {
			t.Fatalf("MaxQueueDepth = %d, want ≥ 1", stats.MaxQueueDepth)
		}
	}
}

// TestStealsRebalanceSkewedLoad forces imbalance between the two workers'
// deques: round-robin seeding gives worker 0 only slow jobs and worker 1
// only instant ones, so worker 1 must raid worker 0's deque for the pool to
// stay busy. The run must record steals and finish far faster than worker 0
// alone could.
func TestStealsRebalanceSkewedLoad(t *testing.T) {
	const jobsN = 8
	var jobs []*Job
	for i := 0; i < jobsN; i++ {
		slow := i%2 == 0 // seeded to worker 0 of 2
		j := &Job{ID: fmt.Sprintf("j%d", i)}
		for k := 0; k < 4; k++ {
			kind := Prep
			if k%2 == 1 {
				kind = Infer
			}
			j.Stages = append(j.Stages, Stage{Kind: kind, Run: func(context.Context) error {
				if slow {
					time.Sleep(2 * time.Millisecond)
				}
				return nil
			}})
		}
		jobs = append(jobs, j)
	}
	stats, err := Scheduler{Pipelined: true, Workers: 2}.RunStats(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Err != nil {
			t.Fatalf("job %s failed: %v", j.ID, j.Err)
		}
	}
	if stats.Steals == 0 {
		t.Fatal("skewed load produced zero steals; idle worker never raided the loaded deque")
	}
}
