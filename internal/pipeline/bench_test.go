package pipeline

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// mixedJobs builds jobs alternating sleep-bound prep stages with spin-bound
// infer stages, the resource split Algorithm 1 exploits.
func mixedJobs(n int, prep, infer time.Duration) []*Job {
	jobs := make([]*Job, n)
	for i := range jobs {
		j := &Job{ID: fmt.Sprintf("t%d", i)}
		for k := 0; k < 4; k++ {
			kind := Prep
			d := prep
			if k%2 == 1 {
				kind = Infer
				d = infer
			}
			j.Stages = append(j.Stages, Stage{Kind: kind, Run: func(context.Context) error {
				time.Sleep(d)
				return nil
			}})
		}
		jobs[i] = j
	}
	return jobs
}

func BenchmarkSequentialExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := (Scheduler{}).Run(context.Background(), mixedJobs(16, 200*time.Microsecond, 200*time.Microsecond)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinedExecution(b *testing.B) {
	s := Scheduler{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}
	for i := 0; i < b.N; i++ {
		if err := s.Run(context.Background(), mixedJobs(16, 200*time.Microsecond, 200*time.Microsecond)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinedWidePools(b *testing.B) {
	s := Scheduler{Pipelined: true, PrepWorkers: 8, InferWorkers: 8}
	for i := 0; i < b.N; i++ {
		if err := s.Run(context.Background(), mixedJobs(16, 200*time.Microsecond, 200*time.Microsecond)); err != nil {
			b.Fatal(err)
		}
	}
}
