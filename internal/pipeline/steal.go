// The work-stealing engine behind Scheduler (DESIGN.md §16). Every worker
// owns a deque split by stage kind; a stage becomes runnable the moment its
// predecessor finishes (Definition 5.1) and is pushed onto the deque of the
// worker that completed the predecessor, so a job's stages keep data
// locality by default. Idle workers first pop their own deque LIFO —
// preferring Infer stages, whose inputs are hottest — and otherwise raid a
// victim FIFO, preferring Prep stages and taking half the queue per raid
// (steal-half), which starts upcoming I/O early while the victim keeps its
// compute-bound tail.
//
// Deque operations run under one engine mutex: stages are millisecond-scale
// (model forwards, database scans), so the discipline — locality, kind
// priorities, steal-half — is what matters, not lock-free push/pop.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

var (
	stealsTotal = map[StageKind]*obs.Counter{
		Prep:  obs.Default.Counter("taste_pipeline_steals_total", "kind", "prep"),
		Infer: obs.Default.Counter("taste_pipeline_steals_total", "kind", "infer"),
	}
	queueDepthGauge = obs.Default.Gauge("taste_pipeline_queue_depth")
)

// item is one runnable stage in a deque.
type item struct {
	js *jobState
	// readyAt is when the stage became runnable (job submission or the
	// previous stage's completion); dispatch−readyAt is its queue wait.
	readyAt time.Time
	// stolen marks a stage migrated off its owner's deque by a raid.
	stolen bool
}

// jobState tracks a job's progress; next indexes the next stage to run.
// Each job is owned by exactly one worker at a time (its runnable stage
// sits in exactly one deque, or is in flight on one worker), so next needs
// no extra synchronization beyond the engine mutex.
type jobState struct {
	job  *Job
	next int
}

// deque is one worker's pending stages, split by kind so both the LIFO
// local pop and the FIFO steal can pick their preferred kind in O(1).
type deque struct {
	q [2][]*item // indexed by StageKind
}

type engine struct {
	ctx     context.Context
	deques  []deque
	wg      sync.WaitGroup
	mu      sync.Mutex
	cond    *sync.Cond
	queued  int // runnable stages across all deques
	inflight int
	remaining int // stages not yet finished or abandoned
	done    bool
	stats   Stats
}

// runStealing executes jobs on a pool of workers with per-worker deques.
// Jobs are seeded round-robin so the initial prep wave spreads across the
// pool; after that, locality and stealing take over.
func runStealing(ctx context.Context, jobs []*Job, workers int) Stats {
	e := &engine{ctx: ctx, deques: make([]deque, workers)}
	e.cond = sync.NewCond(&e.mu)
	now := time.Now()
	var states []*jobState
	for i, j := range jobs {
		if len(j.Stages) == 0 {
			continue
		}
		js := &jobState{job: j}
		states = append(states, js)
		e.pushLocked(i%workers, &item{js: js, readyAt: now})
		e.remaining += len(j.Stages)
	}
	if e.remaining == 0 {
		queueDepthGauge.Set(0)
		return e.stats
	}
	// Wake parked workers when the context dies so cancellation is observed
	// even while the pool is idle.
	stopWatch := context.AfterFunc(ctx, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer stopWatch()

	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(w)
	}
	e.wg.Wait()
	queueDepthGauge.Set(0)
	// Attribute the cancellation to every job the scheduler abandoned.
	if err := ctx.Err(); err != nil {
		for _, js := range states {
			if js.job.Err == nil && js.next < len(js.job.Stages) {
				js.job.Err = err
			}
		}
	}
	return e.stats
}

// worker is the pool loop: take a runnable stage (local LIFO, then steal),
// run it, repeat until every stage finished or the context died.
func (e *engine) worker(id int) {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		if e.done || e.ctx.Err() != nil {
			e.mu.Unlock()
			return
		}
		it := e.take(id)
		if it == nil {
			if e.queued == 0 && e.inflight == 0 && e.remaining > 0 {
				// Nothing runnable, nothing running, work remaining: a
				// scheduler bug would otherwise park the pool forever.
				panic("pipeline: scheduler deadlock")
			}
			e.cond.Wait()
			continue
		}
		e.inflight++
		e.mu.Unlock()

		js := it.js
		stage := js.job.Stages[js.next]
		queueWait(js.next, stage.Kind, it.stolen, time.Since(it.readyAt))
		err := stage.Run(e.ctx)

		e.mu.Lock()
		e.inflight--
		if err != nil {
			js.job.Err = fmt.Errorf("stage %s: %w", stage.Name, err)
			e.remaining -= len(js.job.Stages) - js.next
		} else {
			js.next++
			e.remaining--
			if js.next < len(js.job.Stages) {
				// The completing worker keeps the job: its successor stage
				// lands on this deque and is popped LIFO next unless a
				// thief gets there first.
				e.pushLocked(id, &item{js: js, readyAt: time.Now()})
				e.cond.Signal()
			}
		}
		if e.remaining <= 0 {
			e.done = true
			e.cond.Broadcast()
		}
	}
}

// pushLocked appends a runnable stage to worker id's deque. Callers hold
// e.mu (or have exclusive access during seeding).
func (e *engine) pushLocked(id int, it *item) {
	k := it.js.job.Stages[it.js.next].Kind
	e.deques[id].q[k] = append(e.deques[id].q[k], it)
	e.queued++
	if e.queued > e.stats.MaxQueueDepth {
		e.stats.MaxQueueDepth = e.queued
	}
	queueDepthGauge.Set(int64(e.queued))
}

// take returns the next stage worker id should run: its own newest stage
// (Infer before Prep), else the spoils of a raid on another worker's
// oldest stages (Prep before Infer, steal-half). Nil when every deque is
// empty. Callers hold e.mu.
func (e *engine) take(id int) *item {
	d := &e.deques[id]
	for _, k := range [...]StageKind{Infer, Prep} {
		if q := d.q[k]; len(q) > 0 {
			it := q[len(q)-1]
			d.q[k] = q[:len(q)-1]
			e.queued--
			queueDepthGauge.Set(int64(e.queued))
			return it
		}
	}
	n := len(e.deques)
	for off := 1; off < n; off++ {
		v := &e.deques[(id+off)%n]
		for _, k := range [...]StageKind{Prep, Infer} {
			q := v.q[k]
			if len(q) == 0 {
				continue
			}
			half := (len(q) + 1) / 2
			taken := q[:half:half]
			v.q[k] = q[half:]
			for _, it := range taken {
				it.stolen = true
			}
			e.stats.Steals++
			e.stats.Stolen += int64(half)
			stealsTotal[k].Add(int64(half))
			// The oldest stage runs now; the rest of the haul joins the
			// thief's deque in age order.
			d.q[k] = append(d.q[k], taken[1:]...)
			e.queued--
			queueDepthGauge.Set(int64(e.queued))
			return taken[0]
		}
	}
	return nil
}
