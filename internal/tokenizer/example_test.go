package tokenizer_test

import (
	"fmt"

	"repro/internal/tokenizer"
)

func ExampleBuilder() {
	b := tokenizer.NewBuilder()
	for i := 0; i < 3; i++ {
		b.Add("customer phone number")
	}
	tok := b.Build(100, 2)
	fmt.Println(tok.Tokenize("Customer_Phone"))
	// Output: [customer [UNK] phone]
}

func ExampleTokenizer_Encode() {
	tok := tokenizer.New([]string{"credit", "card"})
	ids := tok.Encode("credit card")
	fmt.Println(tok.Token(ids[0]), tok.Token(ids[1]))
	// Output: credit card
}
