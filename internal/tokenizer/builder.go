package tokenizer

import "sort"

// Builder accumulates term statistics from a corpus and produces a
// vocabulary. It is a frequency-based approximation of WordPiece training:
// whole words above a frequency threshold enter the vocabulary directly;
// for coverage of rare words it also admits frequent prefixes and
// continuation pieces, plus all single characters seen, so that any input
// can be segmented without [UNK] explosions.
type Builder struct {
	wordFreq map[string]int
}

// NewBuilder creates an empty vocabulary builder.
func NewBuilder() *Builder {
	return &Builder{wordFreq: make(map[string]int)}
}

// Add tokenizes text with BasicTokens and counts its words.
func (b *Builder) Add(text string) {
	for _, w := range BasicTokens(text) {
		b.wordFreq[w]++
	}
}

// Build produces a tokenizer whose vocabulary holds at most maxTerms terms:
// the most frequent whole words, plus sub-word pieces derived from every
// counted word (prefixes of length ≤4 and their continuations), plus all
// single characters. minFreq filters noise words.
func (b *Builder) Build(maxTerms, minFreq int) *Tokenizer {
	type wf struct {
		w string
		f int
	}
	words := make([]wf, 0, len(b.wordFreq))
	chars := make(map[string]bool)
	pieceFreq := make(map[string]int)
	for w, f := range b.wordFreq {
		runes := []rune(w)
		for _, r := range runes {
			chars[string(r)] = true
		}
		if f >= minFreq {
			words = append(words, wf{w, f})
		}
		// Sub-word pieces: short prefixes and their continuation parts give
		// the greedy segmenter useful fallbacks for unseen words.
		if len(runes) > 4 {
			pieceFreq[string(runes[:4])] += f
			pieceFreq["##"+string(runes[4:])] += f
		}
	}
	sort.Slice(words, func(i, j int) bool {
		if words[i].f != words[j].f {
			return words[i].f > words[j].f
		}
		return words[i].w < words[j].w
	})

	var terms []string
	// Single characters and their continuations come first: with them, any
	// word can always be segmented (worst case char by char).
	charList := make([]string, 0, len(chars)*2)
	for c := range chars {
		charList = append(charList, c, "##"+c)
	}
	sort.Strings(charList)
	terms = append(terms, charList...)

	for _, x := range words {
		if len(terms) >= maxTerms {
			break
		}
		terms = append(terms, x.w)
	}
	pieces := make([]wf, 0, len(pieceFreq))
	for p, f := range pieceFreq {
		if f >= minFreq {
			pieces = append(pieces, wf{p, f})
		}
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].f != pieces[j].f {
			return pieces[i].f > pieces[j].f
		}
		return pieces[i].w < pieces[j].w
	})
	for _, x := range pieces {
		if len(terms) >= maxTerms+len(pieceFreq) { // pieces ride above the word cap
			break
		}
		terms = append(terms, x.w)
	}
	return New(terms)
}
