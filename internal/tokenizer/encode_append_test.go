package tokenizer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refEncode is the reference: the original rune-at-a-time Encode.
func refEncode(tok *Tokenizer, s string) []int {
	return tok.Encode(s)
}

// TestEncodeAppendMatchesEncode pins the zero-alloc substring path against
// the reference tokenizer on the input shapes the serving path sees.
func TestEncodeAppendMatchesEncode(t *testing.T) {
	tok := testTok()
	cases := []string{
		"",
		"phone",
		"Phone Number",
		"phone_number, credit-card!",
		"abc cba bac",
		"   padded   spaces   ",
		"zzz unknown zzz",
		"ALLCAPS MiXeD",
		"names userss",
		"tab\tnewline\nmix",
		"digits123 and ipv4",
		"Ünïcode Grüße çédille",
		"日本語のテキスト",
		"emoji 🙂 in cells",
		"a,b;c.d/e\\f(g)h[i]j{k}l",
		"quoted \"values\" and 'more'",
		"trailing punct...",
		"##s ##b literal hashes",
		string([]byte{0xff, 0xfe, 'a', 'b'}),        // invalid UTF-8: falls back to the slow path
		"mixed " + string([]byte{0x80}) + " middle", // invalid continuation byte
	}
	for _, s := range cases {
		want := refEncode(tok, s)
		got := tok.EncodeAppend(nil, s)
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Errorf("EncodeAppend(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestEncodeAppendAppendsInPlace: the result must extend dst, preserving the
// existing prefix.
func TestEncodeAppendAppendsInPlace(t *testing.T) {
	tok := testTok()
	dst := []int{42, 43}
	out := tok.EncodeAppend(dst, "phone number")
	if len(out) != 2+2 || out[0] != 42 || out[1] != 43 {
		t.Fatalf("prefix not preserved: %v", out)
	}
	if !reflect.DeepEqual(out[2:], tok.Encode("phone number")) {
		t.Fatalf("suffix mismatch: %v", out[2:])
	}
}

// TestEncodeAppendMatchesEncodeProperty drives both encoders with random
// strings assembled from vocabulary fragments, separators and noise.
func TestEncodeAppendMatchesEncodeProperty(t *testing.T) {
	tok := testTok()
	frags := []string{"phone", "number", "credit", "card", "user", "name", "s",
		"a", "b", "c", "ab", "abc", "zz", "Z", "é", "日", " ", ",", "-", "_", ".", "🙂"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s string
		for n := rng.Intn(12); n > 0; n-- {
			s += frags[rng.Intn(len(frags))]
		}
		return reflect.DeepEqual(normalize(tok.EncodeAppend(nil, s)), normalize(tok.Encode(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeAppendAllocsWhenCapacitySuffices: with a pre-sized destination,
// lowercase input encodes with zero allocations, and mixed case costs only
// the one ToLower copy — this is what removes tokenization from the Phase-2
// allocation profile.
func TestEncodeAppendAllocsWhenCapacitySuffices(t *testing.T) {
	tok := testTok()
	dst := make([]int, 0, 64)
	if got := testing.AllocsPerRun(100, func() {
		dst = tok.EncodeAppend(dst[:0], "phone_number, credit-card users")
	}); got > 0 {
		t.Fatalf("lowercase EncodeAppend allocated %.0f times per run, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		dst = tok.EncodeAppend(dst[:0], "Phone_Number, Credit-Card Users")
	}); got > 1 {
		t.Fatalf("mixed-case EncodeAppend allocated %.0f times per run, want ≤ 1 (the ToLower copy)", got)
	}
}

// normalize maps nil to an empty slice so DeepEqual compares content only.
func normalize(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}
