// Package tokenizer implements a WordPiece-style subword tokenizer with the
// special tokens used by the ADTD model and its baselines. The vocabulary is
// learned from a corpus (see Builder) rather than shipped, because the
// reproduction generates its own synthetic table corpora.
//
// Tokenization follows BERT conventions: text is lower-cased, split on
// whitespace and punctuation (punctuation becomes its own token), and each
// word is greedily segmented into the longest vocabulary prefixes, with
// continuation pieces prefixed by "##". Unknown segments map to [UNK].
package tokenizer

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Special token identifiers. These occupy the first vocabulary slots in the
// order declared here.
const (
	PAD  = "[PAD]"  // padding
	UNK  = "[UNK]"  // unknown piece
	CLS  = "[CLS]"  // sequence/cell start marker (§4.1)
	SEP  = "[SEP]"  // field separator
	MASK = "[MASK]" // masked-language-model target
	COL  = "[COL]"  // column-metadata anchor position
	VAL  = "[VAL]"  // column-content anchor position
	TAB  = "[TAB]"  // table-level metadata anchor position
)

// SpecialTokens lists all special tokens in vocabulary order.
var SpecialTokens = []string{PAD, UNK, CLS, SEP, MASK, COL, VAL, TAB}

// Tokenizer maps text to vocabulary ids and back.
type Tokenizer struct {
	vocab map[string]int
	terms []string
	// contVocab indexes continuation pieces by their text without the "##"
	// prefix, so the allocation-free EncodeAppend can look up candidates as
	// plain substrings instead of building "##"+cand strings.
	contVocab map[string]int
}

// New creates a tokenizer over the given vocabulary terms. The special
// tokens are always present and occupy ids 0..len(SpecialTokens)-1; terms
// must not repeat them.
func New(terms []string) *Tokenizer {
	t := &Tokenizer{vocab: make(map[string]int, len(terms)+len(SpecialTokens))}
	for _, s := range SpecialTokens {
		t.vocab[s] = len(t.terms)
		t.terms = append(t.terms, s)
	}
	for _, term := range terms {
		if _, ok := t.vocab[term]; ok {
			continue
		}
		t.vocab[term] = len(t.terms)
		t.terms = append(t.terms, term)
	}
	t.contVocab = make(map[string]int)
	for term, id := range t.vocab {
		if strings.HasPrefix(term, "##") {
			t.contVocab[term[2:]] = id
		}
	}
	return t
}

// VocabSize returns the number of distinct token ids.
func (t *Tokenizer) VocabSize() int { return len(t.terms) }

// ID returns the id for a token, or the [UNK] id if absent.
func (t *Tokenizer) ID(token string) int {
	if id, ok := t.vocab[token]; ok {
		return id
	}
	return t.vocab[UNK]
}

// MustID returns the id for a token that is known to exist, panicking
// otherwise; intended for special tokens.
func (t *Tokenizer) MustID(token string) int {
	id, ok := t.vocab[token]
	if !ok {
		panic("tokenizer: unknown token " + token)
	}
	return id
}

// Token returns the string for an id, or [UNK] when out of range.
func (t *Tokenizer) Token(id int) string {
	if id < 0 || id >= len(t.terms) {
		return UNK
	}
	return t.terms[id]
}

// Encode tokenizes text and returns vocabulary ids.
func (t *Tokenizer) Encode(text string) []int {
	pieces := t.Tokenize(text)
	ids := make([]int, len(pieces))
	for i, p := range pieces {
		ids[i] = t.ID(p)
	}
	return ids
}

// EncodeAppend appends the vocabulary ids of text's word pieces to dst and
// returns the extended slice. It produces exactly the ids of Encode but is
// the inference hot path: basic tokens stay substrings of the lower-cased
// text, wordpiece candidates are looked up as substrings (continuations via
// contVocab), and no intermediate piece strings or slices are built.
func (t *Tokenizer) EncodeAppend(dst []int, text string) []int {
	if !utf8.ValidString(text) {
		// The rune-based reference replaces invalid bytes with U+FFFD;
		// substring arithmetic can't, so take the slow path for parity.
		for _, p := range t.Tokenize(text) {
			dst = append(dst, t.ID(p))
		}
		return dst
	}
	lower := strings.ToLower(text)
	wordStart := -1
	for i := 0; i < len(lower); {
		r, size := utf8.DecodeRuneInString(lower[i:])
		switch {
		case unicode.IsSpace(r):
			if wordStart >= 0 {
				dst = t.wordpieceAppend(dst, lower[wordStart:i])
				wordStart = -1
			}
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			if wordStart >= 0 {
				dst = t.wordpieceAppend(dst, lower[wordStart:i])
				wordStart = -1
			}
			dst = t.wordpieceAppend(dst, lower[i:i+size])
		default:
			if wordStart < 0 {
				wordStart = i
			}
		}
		i += size
	}
	if wordStart >= 0 {
		dst = t.wordpieceAppend(dst, lower[wordStart:])
	}
	return dst
}

// wordpieceAppend is wordpiece directly to ids: greedy longest-prefix
// segmentation with candidates taken as substrings of word (rune-boundary
// end points, identical to the rune-slice reference).
func (t *Tokenizer) wordpieceAppend(dst []int, word string) []int {
	if id, ok := t.vocab[word]; ok {
		return append(dst, id)
	}
	mark := len(dst)
	start := 0
	for start < len(word) {
		end := len(word)
		found := -1
		for end > start {
			var id int
			var ok bool
			if start > 0 {
				id, ok = t.contVocab[word[start:end]]
			} else {
				id, ok = t.vocab[word[start:end]]
			}
			if ok {
				found = id
				break
			}
			_, size := utf8.DecodeLastRuneInString(word[start:end])
			end -= size
		}
		if found < 0 {
			return append(dst[:mark], t.vocab[UNK])
		}
		dst = append(dst, found)
		start = end
	}
	return dst
}

// Tokenize splits text into word pieces without converting to ids.
func (t *Tokenizer) Tokenize(text string) []string {
	var out []string
	for _, w := range BasicTokens(text) {
		out = append(out, t.wordpiece(w)...)
	}
	return out
}

// wordpiece greedily segments a single word into vocabulary pieces.
func (t *Tokenizer) wordpiece(word string) []string {
	if _, ok := t.vocab[word]; ok {
		return []string{word}
	}
	var pieces []string
	runes := []rune(word)
	start := 0
	for start < len(runes) {
		end := len(runes)
		var found string
		for end > start {
			cand := string(runes[start:end])
			if start > 0 {
				cand = "##" + cand
			}
			if _, ok := t.vocab[cand]; ok {
				found = cand
				break
			}
			end--
		}
		if found == "" {
			return []string{UNK}
		}
		pieces = append(pieces, found)
		start = end
	}
	return pieces
}

// BasicTokens lower-cases text and splits it into words and punctuation
// marks. Digits group with letters (so "ipv4" stays one token) but
// punctuation always separates.
func BasicTokens(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			flush()
			out = append(out, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
