package tokenizer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func testTok() *Tokenizer {
	return New([]string{"phone", "number", "credit", "card", "user", "name", "##s", "a", "b", "c", "##b", "##c"})
}

func TestSpecialTokensFirst(t *testing.T) {
	tok := testTok()
	for i, s := range SpecialTokens {
		if tok.MustID(s) != i {
			t.Fatalf("special token %s has id %d, want %d", s, tok.MustID(s), i)
		}
	}
}

func TestVocabSize(t *testing.T) {
	tok := New([]string{"x", "y", "x"}) // duplicate ignored
	if tok.VocabSize() != len(SpecialTokens)+2 {
		t.Fatalf("VocabSize = %d", tok.VocabSize())
	}
}

func TestIDUnknownFallsBackToUNK(t *testing.T) {
	tok := testTok()
	if tok.ID("nonexistent") != tok.MustID(UNK) {
		t.Fatal("unknown token should map to [UNK]")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	tok := testTok()
	id := tok.ID("phone")
	if tok.Token(id) != "phone" {
		t.Fatalf("round trip failed: %s", tok.Token(id))
	}
	if tok.Token(-1) != UNK || tok.Token(99999) != UNK {
		t.Fatal("out-of-range ids should return [UNK]")
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testTok().MustID("missing")
}

func TestBasicTokens(t *testing.T) {
	got := BasicTokens("Phone_Number, user-name")
	want := []string{"phone", "_", "number", ",", "user", "-", "name"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BasicTokens = %v, want %v", got, want)
	}
}

func TestBasicTokensDigitsStayWithLetters(t *testing.T) {
	got := BasicTokens("ipv4 addr2")
	want := []string{"ipv4", "addr2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BasicTokens = %v", got)
	}
}

func TestWordpieceGreedy(t *testing.T) {
	tok := testTok()
	got := tok.Tokenize("abc")
	// Greedy: "a" then "##b" then "##c" (no "abc" or "ab" in vocab).
	want := []string{"a", "##b", "##c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize(abc) = %v, want %v", got, want)
	}
}

func TestWordpieceWholeWordWins(t *testing.T) {
	tok := testTok()
	got := tok.Tokenize("phone")
	if !reflect.DeepEqual(got, []string{"phone"}) {
		t.Fatalf("Tokenize(phone) = %v", got)
	}
}

func TestWordpieceUnknown(t *testing.T) {
	tok := testTok()
	got := tok.Tokenize("zzz") // no 'z' pieces in vocab
	if !reflect.DeepEqual(got, []string{UNK}) {
		t.Fatalf("Tokenize(zzz) = %v, want [UNK]", got)
	}
}

func TestEncode(t *testing.T) {
	tok := testTok()
	ids := tok.Encode("phone number")
	if len(ids) != 2 || tok.Token(ids[0]) != "phone" || tok.Token(ids[1]) != "number" {
		t.Fatalf("Encode = %v", ids)
	}
}

func TestBuilderBuildsUsableVocab(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.Add("customer phone number")
		b.Add("customer credit card")
	}
	tok := b.Build(100, 2)
	pieces := tok.Tokenize("customer phone")
	if len(pieces) != 2 || pieces[0] != "customer" || pieces[1] != "phone" {
		t.Fatalf("builder vocab missing frequent words: %v", pieces)
	}
}

func TestBuilderMinFreqFilters(t *testing.T) {
	b := NewBuilder()
	b.Add("rareword")
	for i := 0; i < 10; i++ {
		b.Add("common")
	}
	tok := b.Build(100, 5)
	if got := tok.Tokenize("common"); got[0] != "common" {
		t.Fatalf("frequent word missing: %v", got)
	}
	// rareword is not a whole-word entry, but chars guarantee segmentation
	// into something other than a bare [UNK].
	got := tok.Tokenize("rareword")
	if len(got) == 1 && got[0] == UNK {
		t.Fatalf("char fallback failed: %v", got)
	}
}

func TestBuilderCharFallbackCoversAnySeenChars(t *testing.T) {
	b := NewBuilder()
	b.Add("abcdefghij klmnop")
	tok := b.Build(5, 100) // tiny cap, nothing passes minFreq as a word
	got := tok.Tokenize("jihgfedcba")
	for _, p := range got {
		if p == UNK {
			t.Fatalf("char coverage should prevent UNK: %v", got)
		}
	}
}

// Property: encoding never yields ids outside [0, VocabSize) and never
// panics, for arbitrary input strings.
func TestEncodeBoundsProperty(t *testing.T) {
	b := NewBuilder()
	b.Add("the quick brown fox jumps over lazy dogs 0123456789")
	tok := b.Build(50, 1)
	f := func(s string) bool {
		for _, id := range tok.Encode(s) {
			if id < 0 || id >= tok.VocabSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Tokenize output joined back (stripping ## and [UNK]) is a
// subsequence-preserving lowering of the input's letters.
func TestTokenizeDeterministicProperty(t *testing.T) {
	tok := testTok()
	f := func(s string) bool {
		a := tok.Tokenize(s)
		b := tok.Tokenize(s)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
